package experiments

import (
	"math"
	"strings"
	"testing"
)

// argmin returns the x whose column value is smallest.
func argmin(t *Table, col int) float64 {
	best, bx := math.Inf(1), 0.0
	for _, row := range t.Rows {
		if row[col] >= 0 && row[col] < best {
			best, bx = row[col], row[0]
		}
	}
	return bx
}

func colAt(t *Table, x float64, col int) float64 {
	for _, row := range t.Rows {
		if row[0] == x {
			return row[col]
		}
	}
	return math.NaN()
}

func TestFigure2Shape(t *testing.T) {
	tab, err := Figure2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(QuantumSweep) {
		t.Fatalf("%d rows, want %d", len(tab.Rows), len(QuantumSweep))
	}
	// Every class is stable at rho = 0.4 across the sweep.
	for _, row := range tab.Rows {
		for p := 1; p <= 4; p++ {
			if row[p] < 0 {
				t.Fatalf("unexpected instability at quantum %g class %d", row[0], p-1)
			}
		}
	}
	// Short-service classes (2, 3) show the paper's U-shape: the endpoint
	// at quantum 6 sits above the minimum.
	for _, p := range []int{3, 4} {
		min := math.Inf(1)
		for _, row := range tab.Rows {
			if row[p] < min {
				min = row[p]
			}
		}
		end := colAt(tab, 6, p)
		if end < min*1.05 {
			t.Fatalf("class %d: no rise after knee (min %g, at q=6 %g)", p-1, min, end)
		}
	}
	// The left end (quantum comparable to overhead) is worse than the knee
	// for every class: context-switch dominance.
	for p := 1; p <= 4; p++ {
		left := tab.Rows[0][p]
		min := math.Inf(1)
		for _, row := range tab.Rows {
			if row[p] < min {
				min = row[p]
			}
		}
		if left < min*1.01 {
			t.Fatalf("class %d: left end %g not above minimum %g", p-1, left, min)
		}
	}
}

func TestFigure3HeavierLoadKneesCloser(t *testing.T) {
	f2, err := Figure2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	f3, err := Figure3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	spread := func(tab *Table) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for p := 1; p <= 4; p++ {
			x := argmin(tab, p)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return hi - lo
	}
	// The paper: "The heavier the system load, the closer to each other
	// are the knee points of the curves."
	if spread(f3) > spread(f2) {
		t.Fatalf("knee spread at rho=0.9 (%g) exceeds rho=0.4 (%g)", spread(f3), spread(f2))
	}
	// At rho = 0.9 every class's population is much larger than at 0.4.
	for p := 1; p <= 4; p++ {
		if colAt(f3, 1, p) < 3*colAt(f2, 1, p) {
			t.Fatalf("class %d: rho=0.9 N (%g) not ≫ rho=0.4 N (%g)",
				p-1, colAt(f3, 1, p), colAt(f2, 1, p))
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	tab, err := Figure4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 4; p++ {
		// Monotone decreasing in service rate.
		for i := 1; i < len(tab.Rows); i++ {
			if tab.Rows[i][p] > tab.Rows[i-1][p]+1e-9 {
				t.Fatalf("class %d: N not decreasing at mu=%g", p-1, tab.Rows[i][0])
			}
		}
		// Flattening: early drop dwarfs the late drop.
		early := colAt(tab, 2, p) - colAt(tab, 8, p)
		late := colAt(tab, 14, p) - colAt(tab, 20, p)
		if early < 5*late {
			t.Fatalf("class %d: no flattening (early drop %g, late drop %g)", p-1, early, late)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	tab, err := Figure5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// N_p decreases monotonically in the class's own share of the cycle.
	for p := 1; p <= 4; p++ {
		for i := 1; i < len(tab.Rows); i++ {
			if tab.Rows[i][p] > tab.Rows[i-1][p]*1.001 {
				t.Fatalf("class %d: N not decreasing at share %g (%g -> %g)",
					p-1, tab.Rows[i][0], tab.Rows[i-1][p], tab.Rows[i][p])
			}
		}
	}
}

func TestAblationHeavyVsFixedPoint(t *testing.T) {
	tab, err := AblationHeavyVsFixedPoint(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The fixed point never exceeds the heavy-traffic bound, and the
	// relative gap shrinks with load.
	var gaps []float64
	for _, row := range tab.Rows {
		heavy, fixed := row[1], row[2]
		if fixed > heavy*1.001 {
			t.Fatalf("fixed point %g above heavy-traffic %g at rho=%g", fixed, heavy, row[0])
		}
		gaps = append(gaps, (heavy-fixed)/heavy)
	}
	if gaps[len(gaps)-1] > gaps[0] {
		t.Fatalf("gap should shrink with load: %v", gaps)
	}
}

func TestAblationFitOrderInsensitive(t *testing.T) {
	tab, err := AblationFitOrder(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The reduction is moment-driven; the order cap should move total N
	// by at most a few percent.
	base := tab.Rows[len(tab.Rows)-1][1]
	for _, row := range tab.Rows {
		if math.Abs(row[1]-base)/base > 0.05 {
			t.Fatalf("order %g changes total N by >5%%: %g vs %g", row[0], row[1], base)
		}
	}
}

func TestAblationQuantumShape(t *testing.T) {
	tab, err := AblationQuantumShape(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for p := 1; p <= 4; p++ {
			if row[p] <= 0 {
				t.Fatalf("scv=%g class %d: N = %g", row[0], p-1, row[p])
			}
		}
	}
}

func TestAblationOverheadMonotone(t *testing.T) {
	tab, err := AblationOverhead(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// More switching waste can only hurt (until instability, marked -1).
	for p := 1; p <= 4; p++ {
		prev := 0.0
		for _, row := range tab.Rows {
			if row[p] < 0 {
				continue // past the stability boundary
			}
			if row[p] < prev*0.999 {
				t.Fatalf("class %d: N decreased with overhead at %g", p-1, row[0])
			}
			prev = row[p]
		}
	}
}

func TestDecompositionErrorBrackets(t *testing.T) {
	tab, err := DecompositionError(Options{})
	if err != nil {
		t.Fatal(err)
	}
	prevErr := 0.0
	for _, row := range tab.Rows {
		exact, fixed, heavy := row[1], row[2], row[3]
		if !(fixed <= exact*1.02 && exact <= heavy*1.02) {
			t.Fatalf("rho=%g: exact %g not bracketed by fixed %g / heavy %g",
				row[0], exact, fixed, heavy)
		}
		// The fixed point's (negative) error grows in magnitude with load.
		if row[4] > prevErr+1e-9 {
			t.Fatalf("fixed-point error not worsening with load: %v", tab.Rows)
		}
		prevErr = row[4]
	}
}

func TestTransientWarmup(t *testing.T) {
	tab, err := TransientWarmup(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][0] != 0 {
		t.Fatalf("first row should be t=0")
	}
	for p := 1; p <= 4; p++ {
		if tab.Rows[0][p] != 0 {
			t.Fatalf("class %d: N(0) = %g, want 0", p-1, tab.Rows[0][p])
		}
		// Monotone rise from empty.
		for i := 1; i < len(tab.Rows); i++ {
			if tab.Rows[i][p] < tab.Rows[i-1][p]-1e-9 {
				t.Fatalf("class %d: transient not monotone at t=%g", p-1, tab.Rows[i][0])
			}
		}
		// Near-converged by the last time point.
		last, prev := tab.Rows[len(tab.Rows)-1][p], tab.Rows[len(tab.Rows)-2][p]
		if (last-prev)/last > 0.01 {
			t.Fatalf("class %d: transient still moving at the horizon (%g -> %g)", p-1, prev, last)
		}
	}
}

func TestBatchSensitivity(t *testing.T) {
	tab, err := BatchSensitivity(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if math.Abs(row[1]-row[2])/row[2] > 0.02 {
			t.Fatalf("batch %g: N = %g, closed form %g", row[0], row[1], row[2])
		}
	}
	// Monotone in batch size.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][1] <= tab.Rows[i-1][1] {
			t.Fatalf("N not increasing in batch size")
		}
	}
}

func TestChartRendersFigures(t *testing.T) {
	tab, err := AblationOverhead(Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Chart(0).Render()
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "N0") {
		t.Fatalf("chart missing content:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		XLabel:  "x",
		Columns: []string{"a", "b"},
		Rows:    [][]float64{{1, 2, 3}, {4, 5, 6}},
	}
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "a") {
		t.Fatalf("String() missing content:\n%s", s)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "x,a,b\n1,2,3\n") {
		t.Fatalf("CSV wrong:\n%s", csv)
	}
}

func TestPaperModelUtilization(t *testing.T) {
	m := PaperModel(same4(0.4), PaperServiceRates, same4(1), 0.01)
	if math.Abs(m.Utilization()-0.4) > 1e-9 {
		t.Fatalf("utilization = %g, want 0.4", m.Utilization())
	}
}

func TestArrivalVariability(t *testing.T) {
	tab, err := ArrivalVariability(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Class 0 (eight single-processor partitions): burstier arrivals
	// shorten the effective cycle and reduce N — a genuine gang-scheduling
	// effect, confirmed by simulation (see the table notes).
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][1] > tab.Rows[i-1][1]+1e-9 {
			t.Fatalf("class 0 N not decreasing in arrival SCV: %v", tab.Rows)
		}
	}
	for _, row := range tab.Rows {
		for p := 1; p <= 4; p++ {
			if row[p] <= 0 {
				t.Fatalf("scv=%g class %d: N=%g", row[0], p-1, row[p])
			}
		}
	}
}

func TestMachineScaling(t *testing.T) {
	tab, err := MachineScaling(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i := 1; i < len(tab.Rows); i++ {
		// The optimal quantum shrinks as the machine grows: a larger
		// partition pool drains its queue within a shorter slice.
		if tab.Rows[i][1] >= tab.Rows[i-1][1] {
			t.Fatalf("optimal quantum not shrinking with P: %v", tab.Rows)
		}
	}
	for _, row := range tab.Rows {
		// Total N stays within a small factor of linear in P.
		perProc := row[3]
		if perProc < 0.5 || perProc > 3 {
			t.Fatalf("P=%g: N/processor = %g implausible", row[0], perProc)
		}
	}
}
