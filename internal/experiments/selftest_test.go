package experiments

import (
	"strings"
	"testing"
)

func TestSelfTestAllPass(t *testing.T) {
	checks, err := SelfTest()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 5 {
		t.Fatalf("only %d anchors", len(checks))
	}
	report, ok := FormatSelfTest(checks)
	if !ok {
		t.Fatalf("self-test anchors failed:\n%s", report)
	}
	for _, c := range checks {
		if !c.Pass {
			t.Fatalf("%s: got %g want %g", c.Name, c.Got, c.Want)
		}
	}
	if !strings.Contains(report, "all anchors reproduced") {
		t.Fatalf("report missing verdict:\n%s", report)
	}
}

func TestFormatSelfTestFailure(t *testing.T) {
	report, ok := FormatSelfTest([]SelfTestCheck{{Name: "x", Got: 1, Want: 2, Pass: false}})
	if ok || !strings.Contains(report, "FAIL") {
		t.Fatalf("failure not reported:\n%s", report)
	}
}
