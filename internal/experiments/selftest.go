package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/phase"
	"repro/internal/sim"
)

// SelfTestCheck is one verification anchor: an independently-known value
// the library must reproduce.
type SelfTestCheck struct {
	Name   string
	Got    float64
	Want   float64
	Tol    float64 // relative tolerance
	Pass   bool
	Detail string
}

// SelfTest runs the library's closed-form anchors — the checks a user can
// run to convince themselves an installation computes correctly. Each
// anchor compares a solver output against a value known independently of
// this codebase (classical queueing formulas), or cross-checks two
// independent solvers against each other.
func SelfTest() ([]SelfTestCheck, error) {
	var checks []SelfTestCheck
	add := func(name string, got, want, tol float64, detail string) {
		checks = append(checks, SelfTestCheck{
			Name: name, Got: got, Want: want, Tol: tol,
			Pass:   math.Abs(got-want) <= tol*math.Abs(want),
			Detail: detail,
		})
	}

	// 1. M/M/c limit: one class, huge quantum, tiny overhead, g=1 on 4
	//    processors at λ=3: Erlang-C mean population.
	mmc := &core.Model{
		Processors: 4,
		Classes: []core.ClassParams{{
			Partition: 1, Arrival: phase.Exponential(3), Service: phase.Exponential(1),
			Quantum: phase.Exponential(1e-4), Overhead: phase.Exponential(1e4),
		}},
	}
	res, err := core.Solve(mmc, core.SolveOptions{})
	if err != nil {
		return nil, fmt.Errorf("selftest M/M/c: %w", err)
	}
	add("M/M/4 limit (Erlang-C)", res.Classes[0].N, erlangC(3, 1, 4), 0.03,
		"single class, quantum >> service, overhead -> 0")

	// 2. M/M/1 with multiple vacations: quantum never expires, overhead
	//    acts as the vacation.
	vac := &core.Model{
		Processors: 2,
		Classes: []core.ClassParams{{
			Partition: 2, Arrival: phase.Exponential(0.7), Service: phase.Exponential(1),
			Quantum: phase.Exponential(1e-7), Overhead: phase.Exponential(1),
		}},
	}
	res, err = core.Solve(vac, core.SolveOptions{})
	if err != nil {
		return nil, fmt.Errorf("selftest vacation: %w", err)
	}
	add("M/M/1 + exp vacations", res.Classes[0].N, 0.7/0.3+0.7*1, 0.01,
		"N = rho/(1-rho) + lambda*E[V^2]/(2E[V])")

	// 3. Batch arrivals: M^[3]/M/1 with constant batches.
	bm := &core.Model{
		Processors: 2,
		Classes: []core.ClassParams{{
			Partition: 2, Arrival: phase.Exponential(0.7 / 3), Service: phase.Exponential(1),
			Quantum: phase.Exponential(1e-7), Overhead: phase.Exponential(1e4),
			Batch: []float64{0, 0, 1},
		}},
	}
	res, err = core.Solve(bm, core.SolveOptions{})
	if err != nil {
		return nil, fmt.Errorf("selftest batch: %w", err)
	}
	add("M^[3]/M/1 constant batches", res.Classes[0].N, 0.7*4/(2*0.3), 0.02,
		"N = rho(K+1)/(2(1-rho))")

	// 4. Exact joint solver vs decomposition bracket at rho = 0.5.
	two := &core.Model{
		Processors: 4,
		Classes: []core.ClassParams{
			{Partition: 2, Arrival: phase.Exponential(0.5), Service: phase.Exponential(1),
				Quantum: phase.Exponential(1), Overhead: phase.Exponential(100)},
			{Partition: 4, Arrival: phase.Exponential(0.25), Service: phase.Exponential(1),
				Quantum: phase.Exponential(1), Overhead: phase.Exponential(100)},
		},
	}
	ex, err := core.SolveExactTwoClass(two, core.ExactTwoClassOptions{Truncation: 80})
	if err != nil {
		return nil, fmt.Errorf("selftest exact: %w", err)
	}
	fp, err := core.Solve(two, core.SolveOptions{})
	if err != nil {
		return nil, fmt.Errorf("selftest exact/fixed: %w", err)
	}
	bracket := 0.0
	if fp.Classes[0].N <= ex.N[0]*1.02 {
		bracket = 1
	}
	add("exact >= fixed point (bracket)", bracket, 1, 0,
		fmt.Sprintf("exact %.4f, fixed %.4f", ex.N[0], fp.Classes[0].N))

	// 5. Simulator vs M/M/1: single class, whole machine.
	mm1 := &core.Model{
		Processors: 4,
		Classes: []core.ClassParams{{
			Partition: 4, Arrival: phase.Exponential(0.7), Service: phase.Exponential(1),
			Quantum: phase.Exponential(1e-4), Overhead: phase.Exponential(1e5),
		}},
	}
	sres, err := sim.RunGang(sim.Config{Model: mm1, Seed: 1234, Warmup: 5e3, Horizon: 1.05e5})
	if err != nil {
		return nil, fmt.Errorf("selftest sim: %w", err)
	}
	add("simulator M/M/1 limit", sres.Classes[0].MeanJobs, 0.7/0.3, 0.06,
		"discrete-event simulator against rho/(1-rho)")

	return checks, nil
}

// FormatSelfTest renders the checks as a report, returning the text and
// whether everything passed.
func FormatSelfTest(checks []SelfTestCheck) (string, bool) {
	var b strings.Builder
	ok := true
	b.WriteString("gangsched self-test: closed-form anchors\n")
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
			ok = false
		}
		fmt.Fprintf(&b, "  [%s] %-32s got %.4f want %.4f (±%.0f%%)  — %s\n",
			status, c.Name, c.Got, c.Want, c.Tol*100, c.Detail)
	}
	if ok {
		b.WriteString("all anchors reproduced\n")
	} else {
		b.WriteString("ANCHOR FAILURES — this build is not computing the model correctly\n")
	}
	return b.String(), ok
}

func erlangC(lambda, mu float64, c int) float64 {
	a := lambda / mu
	rho := a / float64(c)
	var sum float64
	fact := 1.0
	for k := 0; k < c; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		sum += math.Pow(a, float64(k)) / fact
	}
	factC := fact * float64(c)
	if c == 1 {
		factC = 1
	}
	last := math.Pow(a, float64(c)) / (factC * (1 - rho))
	p0 := 1 / (sum + last)
	return last*p0*rho/(1-rho) + a
}
