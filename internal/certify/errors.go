// Package certify is the solution-certification layer of the analytic
// pipeline: every matrix-geometric solve is verified post-hoc against the
// invariants its answer must satisfy (fixed-point residual, sp(R) < 1,
// probability-vector nonnegativity and normalization, boundary balance,
// finiteness), and the outcome travels with the result as a Certificate.
// Failures are reported through a typed taxonomy so callers — the
// fixed-point driver, the sweep harness, the CLIs — can distinguish
// configuration mistakes from numeric breakdowns and react (retry with an
// escalated budget, fall back to simulation, or abort) instead of parsing
// error strings.
package certify

import (
	"errors"
	"fmt"
)

// The failure taxonomy. Every error produced by the solver pipeline wraps
// exactly one of these sentinels (via Failure), so callers classify with
// errors.Is and never by message text.
var (
	// ErrNotConverged: an iterative method exhausted its budget, or a
	// result's fixed-point residual exceeds its certification tolerance.
	// The only retryable kind — a bigger iteration budget may cure it.
	ErrNotConverged = errors.New("certify: iteration did not converge")
	// ErrSingularBoundary: the finite boundary system is (numerically)
	// singular or its balance equations are violated by the solution.
	ErrSingularBoundary = errors.New("certify: boundary system singular or unbalanced")
	// ErrNumericContaminated: NaN/Inf contamination, lost probability
	// mass, or negative stationary entries beyond roundoff.
	ErrNumericContaminated = errors.New("certify: result contaminated (NaN/Inf, lost mass, or negative probability)")
	// ErrUnstableClass: the class fails the drift condition (sp(R) ≥ 1);
	// no stationary distribution exists.
	ErrUnstableClass = errors.New("certify: class is not positive recurrent")
	// ErrConfig: the model or spec itself is invalid — no amount of
	// retrying or degrading can help.
	ErrConfig = errors.New("certify: invalid configuration")
	// ErrDeadline: the solve was interrupted mid-iteration by its
	// deadline or the caller's cancellation. The partial iterate is
	// discarded — a deadline verdict says nothing about the answer, only
	// that the request's time budget ran out first. Failure.Iterations
	// records the partial progress at the interrupt.
	ErrDeadline = errors.New("certify: solve interrupted by deadline or cancellation")
	// ErrDisagreement: two independent engines (the analytic solver and
	// the discrete-event simulator) produced answers for the same
	// scenario that cannot both be right — the analytic point fell
	// outside the simulator's tolerance-widened confidence interval, or a
	// metamorphic invariant that needs no oracle (monotonicity,
	// utilization law, stability consistency, scale equivalence) broke.
	// Unlike the other kinds it does not indict one computation: it says
	// the model build, the solver, or the simulator is wrong somewhere,
	// and a certificate alone could not have caught it. Raised by
	// internal/xcheck, never by the solver pipeline itself.
	ErrDisagreement = errors.New("certify: analytic and simulation results disagree")
)

// kinds, in classification-priority order: deadline trumps everything —
// a solve killed mid-iteration reports why it died, not what the torn
// iterate looked like — then contamination and config trump the softer
// kinds when an error chain carries several.
var kinds = []error{ErrDeadline, ErrConfig, ErrDisagreement, ErrNumericContaminated, ErrSingularBoundary, ErrUnstableClass, ErrNotConverged}

// Failure is a taxonomy error with diagnostics. Kind is one of the
// package sentinels; Err is the underlying cause (possibly an
// errors.Join of every fallback rung's failure). errors.Is sees both.
type Failure struct {
	Kind       error
	Stage      string  // pipeline stage, e.g. "qbd.rmatrix" or "core.class[2]"
	Iterations int     // iterations spent before giving up, when known
	Residual   float64 // certification residual that failed, when known
	Err        error
}

func (f *Failure) Error() string {
	msg := f.Kind.Error()
	if f.Stage != "" {
		msg += " at " + f.Stage
	}
	if f.Iterations > 0 {
		msg += fmt.Sprintf(" after %d iterations", f.Iterations)
	}
	if f.Residual > 0 {
		msg += fmt.Sprintf(" (residual %.3g)", f.Residual)
	}
	if f.Err != nil {
		msg += ": " + f.Err.Error()
	}
	return msg
}

// Unwrap exposes both the taxonomy sentinel and the underlying cause to
// errors.Is/As.
func (f *Failure) Unwrap() []error {
	if f.Err == nil {
		return []error{f.Kind}
	}
	return []error{f.Kind, f.Err}
}

// Classify returns the taxonomy sentinel err belongs to, or def when err
// carries no kind (e.g. a raw error from outside the pipeline).
func Classify(err, def error) error {
	for _, k := range kinds {
		if errors.Is(err, k) {
			return k
		}
	}
	return def
}

// KindLabel renders err's taxonomy kind as a short manifest-friendly
// token: "deadline", "config", "disagreement", "numeric",
// "singular-boundary", "unstable", "not-converged", "error" (untyped),
// or "" for nil.
func KindLabel(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrConfig):
		return "config"
	case errors.Is(err, ErrDisagreement):
		return "disagreement"
	case errors.Is(err, ErrNumericContaminated):
		return "numeric"
	case errors.Is(err, ErrSingularBoundary):
		return "singular-boundary"
	case errors.Is(err, ErrUnstableClass):
		return "unstable"
	case errors.Is(err, ErrNotConverged):
		return "not-converged"
	}
	return "error"
}
