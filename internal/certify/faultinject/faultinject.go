// Package faultinject provides named fault-injection points for the
// solver pipeline's failure-path tests. Production code calls Fire at
// strategic points (after an R-matrix rung, before a result is returned,
// before trial values are recorded); when nothing is armed — the only
// state outside tests — Fire is a single atomic load. Tests arm a hook
// to corrupt the payload in place (e.g. plant a NaN in a kernel), force
// a typed error, or panic to simulate a worker dying mid-trial.
package faultinject

import (
	"sync"
	"sync/atomic"
)

var (
	armed atomic.Int32
	mu    sync.Mutex
	hooks = map[string]func(payload any) error{}
)

// Arm installs fn at point, replacing any previous hook there.
func Arm(point string, fn func(payload any) error) {
	mu.Lock()
	defer mu.Unlock()
	hooks[point] = fn
	armed.Store(int32(len(hooks)))
}

// ArmOnce installs fn at point for exactly one firing; the hook disarms
// itself afterwards (concurrent firings beyond the first are no-ops).
func ArmOnce(point string, fn func(payload any) error) {
	var once sync.Once
	Arm(point, func(p any) error {
		var err error
		fired := false
		once.Do(func() {
			fired = true
			err = fn(p)
		})
		if fired {
			Disarm(point)
		}
		return err
	})
}

// Disarm removes the hook at point, if any.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(hooks, point)
	armed.Store(int32(len(hooks)))
}

// Reset removes every hook. Tests call it in cleanup so a failed test
// cannot leak faults into its siblings.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	clear(hooks)
	armed.Store(0)
}

// Fire invokes the hook armed at point with payload and returns its
// error; with no hook armed anywhere it costs one atomic load and
// returns nil. Hooks may mutate the payload, return an error for the
// call site to propagate, or panic (the sweep harness's panic isolation
// is itself under test).
func Fire(point string, payload any) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := hooks[point]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(payload)
}

// Chaos is a deterministic probabilistic fault schedule: each Fire at
// the point it is armed on flips a seeded pseudo-random coin and injects
// the fault with probability Rate. One Chaos value drives one point;
// several points with independent streams make a full chaos scenario
// whose every run with the same seeds is identical modulo goroutine
// interleaving.
type Chaos struct {
	mu    sync.Mutex
	state uint64
	rate  float64
	count int64 // fires that injected
}

// NewChaos returns a schedule injecting at the given rate in [0, 1],
// from a deterministic PRNG stream seeded by seed.
func NewChaos(seed int64, rate float64) *Chaos {
	// splitmix64 scramble so nearby seeds give unrelated streams.
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return &Chaos{state: z, rate: rate}
}

// next draws one uniform float64 in [0, 1) (xorshift64*).
func (c *Chaos) next() float64 {
	c.state ^= c.state >> 12
	c.state ^= c.state << 25
	c.state ^= c.state >> 27
	return float64((c.state*0x2545f4914f6cdd1d)>>11) / (1 << 53)
}

// Roll flips the schedule's coin: true means "inject now". Safe for
// concurrent use; the stream is consumed in call order, so totals are
// deterministic even though which caller sees which draw is not.
func (c *Chaos) Roll() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.next() >= c.rate {
		return false
	}
	c.count++
	return true
}

// Injected reports how many Rolls have injected so far — the reconciling
// side of a chaos soak's error accounting.
func (c *Chaos) Injected() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// ArmChaos arms point with a probabilistic hook: on each Fire whose Roll
// lands, fault runs with the payload (inject an error, mutate the
// payload, sleep, or panic); all other fires pass through untouched.
// Returns the schedule so the test can reconcile injected counts.
func ArmChaos(point string, seed int64, rate float64, fault func(payload any) error) *Chaos {
	c := NewChaos(seed, rate)
	Arm(point, func(p any) error {
		if !c.Roll() {
			return nil
		}
		return fault(p)
	})
	return c
}
