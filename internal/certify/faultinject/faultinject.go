// Package faultinject provides named fault-injection points for the
// solver pipeline's failure-path tests. Production code calls Fire at
// strategic points (after an R-matrix rung, before a result is returned,
// before trial values are recorded); when nothing is armed — the only
// state outside tests — Fire is a single atomic load. Tests arm a hook
// to corrupt the payload in place (e.g. plant a NaN in a kernel), force
// a typed error, or panic to simulate a worker dying mid-trial.
package faultinject

import (
	"sync"
	"sync/atomic"
)

var (
	armed atomic.Int32
	mu    sync.Mutex
	hooks = map[string]func(payload any) error{}
)

// Arm installs fn at point, replacing any previous hook there.
func Arm(point string, fn func(payload any) error) {
	mu.Lock()
	defer mu.Unlock()
	hooks[point] = fn
	armed.Store(int32(len(hooks)))
}

// ArmOnce installs fn at point for exactly one firing; the hook disarms
// itself afterwards (concurrent firings beyond the first are no-ops).
func ArmOnce(point string, fn func(payload any) error) {
	var once sync.Once
	Arm(point, func(p any) error {
		var err error
		fired := false
		once.Do(func() {
			fired = true
			err = fn(p)
		})
		if fired {
			Disarm(point)
		}
		return err
	})
}

// Disarm removes the hook at point, if any.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(hooks, point)
	armed.Store(int32(len(hooks)))
}

// Reset removes every hook. Tests call it in cleanup so a failed test
// cannot leak faults into its siblings.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	clear(hooks)
	armed.Store(0)
}

// Fire invokes the hook armed at point with payload and returns its
// error; with no hook armed anywhere it costs one atomic load and
// returns nil. Hooks may mutate the payload, return an error for the
// call site to propagate, or panic (the sweep harness's panic isolation
// is itself under test).
func Fire(point string, payload any) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := hooks[point]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(payload)
}
