package certify

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/certify/faultinject"
)

func TestFailureUnwrapExposesKindAndCause(t *testing.T) {
	cause := errors.New("lu blew up")
	err := error(&Failure{Kind: ErrSingularBoundary, Stage: "qbd.boundary", Err: cause})
	if !errors.Is(err, ErrSingularBoundary) {
		t.Fatal("kind not visible to errors.Is")
	}
	if !errors.Is(err, cause) {
		t.Fatal("cause not visible to errors.Is")
	}
	if errors.Is(err, ErrNotConverged) {
		t.Fatal("unrelated kind matched")
	}
	var f *Failure
	if !errors.As(err, &f) || f.Stage != "qbd.boundary" {
		t.Fatalf("errors.As lost the failure: %+v", f)
	}
}

func TestFailureErrorMessage(t *testing.T) {
	err := &Failure{Kind: ErrNotConverged, Stage: "qbd.rmatrix", Iterations: 42, Residual: 1e-3,
		Err: errors.New("both rungs died")}
	msg := err.Error()
	for _, want := range []string{"qbd.rmatrix", "42 iterations", "0.001", "both rungs died"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
}

func TestClassifyPriority(t *testing.T) {
	// A chain carrying both contamination and non-convergence classifies
	// as the more severe contamination.
	joined := errors.Join(
		&Failure{Kind: ErrNotConverged},
		&Failure{Kind: ErrNumericContaminated},
	)
	if got := Classify(joined, ErrConfig); got != ErrNumericContaminated {
		t.Fatalf("Classify = %v, want ErrNumericContaminated", got)
	}
	if got := Classify(errors.New("raw"), ErrNotConverged); got != ErrNotConverged {
		t.Fatalf("untyped error default = %v", got)
	}
}

func TestKindLabel(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{&Failure{Kind: ErrConfig}, "config"},
		{&Failure{Kind: ErrNumericContaminated}, "numeric"},
		{&Failure{Kind: ErrSingularBoundary}, "singular-boundary"},
		{&Failure{Kind: ErrUnstableClass}, "unstable"},
		{&Failure{Kind: ErrNotConverged}, "not-converged"},
		{&Failure{Kind: ErrDisagreement}, "disagreement"},
		{errors.New("raw"), "error"},
		{fmt.Errorf("wrapped: %w", &Failure{Kind: ErrNotConverged}), "not-converged"},
	}
	for _, c := range cases {
		if got := KindLabel(c.err); got != c.want {
			t.Fatalf("KindLabel(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestCertificateVerify(t *testing.T) {
	healthy := func() *Certificate {
		return &Certificate{
			Finite: true, Residual: 1e-12, SpectralRadius: 0.6,
			TotalMass: 1 + 1e-9, MinEntry: 0, BoundaryResidual: 1e-14,
			Tol: DefaultTolerances(),
		}
	}
	if err := healthy().Verify(); err != nil {
		t.Fatalf("healthy certificate rejected: %v", err)
	}

	c := healthy()
	c.Finite = false
	if err := c.Verify(); !errors.Is(err, ErrNumericContaminated) {
		t.Fatalf("non-finite → %v, want ErrNumericContaminated", err)
	}
	c = healthy()
	c.Residual = 1e-3
	if err := c.Verify(); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("fat residual → %v, want ErrNotConverged", err)
	}
	c = healthy()
	c.Residual = math.NaN()
	if err := c.Verify(); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("NaN residual → %v, want ErrNotConverged", err)
	}
	c = healthy()
	c.SpectralRadius = 1.0
	if err := c.Verify(); !errors.Is(err, ErrUnstableClass) {
		t.Fatalf("sp(R) = 1 → %v, want ErrUnstableClass", err)
	}
	c = healthy()
	c.TotalMass = 0.9
	if err := c.Verify(); !errors.Is(err, ErrNumericContaminated) {
		t.Fatalf("lost mass → %v, want ErrNumericContaminated", err)
	}
	c = healthy()
	c.MinEntry = -1e-3
	if err := c.Verify(); !errors.Is(err, ErrNumericContaminated) {
		t.Fatalf("negative probability → %v, want ErrNumericContaminated", err)
	}
	c = healthy()
	c.BoundaryResidual = 1e-2
	if err := c.Verify(); !errors.Is(err, ErrSingularBoundary) {
		t.Fatalf("unbalanced boundary → %v, want ErrSingularBoundary", err)
	}

	// VerifyR ignores the boundary-level fields entirely.
	c = healthy()
	c.SpectralRadius = 2
	c.TotalMass = 0.5
	if err := c.VerifyR(); err != nil {
		t.Fatalf("VerifyR examined boundary fields: %v", err)
	}
}

func TestFaultInjectFireAndDisarm(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Fire("certify.test", nil); err != nil {
		t.Fatalf("unarmed Fire returned %v", err)
	}
	boom := errors.New("boom")
	faultinject.Arm("certify.test", func(any) error { return boom })
	if err := faultinject.Fire("certify.test", nil); err != boom {
		t.Fatalf("armed Fire returned %v", err)
	}
	if err := faultinject.Fire("certify.other", nil); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
	faultinject.Disarm("certify.test")
	if err := faultinject.Fire("certify.test", nil); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
}

func TestFaultInjectArmOnce(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	count := 0
	faultinject.ArmOnce("certify.once", func(any) error { count++; return errors.New("once") })
	if err := faultinject.Fire("certify.once", nil); err == nil {
		t.Fatal("first firing missed")
	}
	if err := faultinject.Fire("certify.once", nil); err != nil {
		t.Fatalf("second firing not disarmed: %v", err)
	}
	if count != 1 {
		t.Fatalf("hook ran %d times, want 1", count)
	}
}

func TestFaultInjectMutatesPayload(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Arm("certify.mutate", func(p any) error {
		p.(map[string]float64)["v"] = math.NaN()
		return nil
	})
	payload := map[string]float64{"v": 1}
	if err := faultinject.Fire("certify.mutate", payload); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(payload["v"]) {
		t.Fatal("payload not mutated")
	}
}
