package certify_test

import (
	"math"
	"testing"

	"repro/internal/certify"
	"repro/internal/matrix"
	"repro/internal/qbd"
)

// FuzzRMatrixCertify is the certification soundness fuzz: for random
// two-phase QBD generator blocks, a solve that the certifier passes must
// be independently valid — finite, essentially nonnegative, and with a
// small fixed-point residual recomputed from scratch. A certified-but-
// invalid R is the one outcome the certification layer exists to make
// impossible.
func FuzzRMatrixCertify(f *testing.F) {
	f.Add(0.4, 0.1, 0.05, 0.3, 1.2, 0.9, 0.2, 1.1, 0.3, 0.2)
	f.Add(2.0, 0.0, 0.0, 2.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0)
	f.Add(0.01, 0.5, 0.5, 0.01, 3.0, 0.1, 0.1, 3.0, 5.0, 5.0)
	f.Fuzz(func(t *testing.T, a00, a01, a10, a11, d00, d01, d10, d11, u0, u1 float64) {
		clampRate := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Min(math.Abs(v), 1e3)
		}
		// Arrivals (A0), completions (A2), and local phase switching (off-
		// diagonal of A1); the A1 diagonal closes each generator row to 0.
		a0 := matrix.NewFromRows([][]float64{{clampRate(a00), clampRate(a01)}, {clampRate(a10), clampRate(a11)}})
		a2 := matrix.NewFromRows([][]float64{{clampRate(d00), clampRate(d01)}, {clampRate(d10), clampRate(d11)}})
		a1 := matrix.New(2, 2)
		a1.Set(0, 1, clampRate(u0))
		a1.Set(1, 0, clampRate(u1))
		for i := 0; i < 2; i++ {
			var row float64
			for j := 0; j < 2; j++ {
				row += a0.At(i, j) + a1.At(i, j) + a2.At(i, j)
			}
			a1.Add(i, i, -row)
		}
		if a1.At(0, 0) >= -1e-9 || a1.At(1, 1) >= -1e-9 {
			return // degenerate: no exit rate, uniformization undefined
		}

		r, err := qbd.RMatrix(a0, a1, a2, qbd.RMatrixOptions{})
		if err != nil {
			return // a typed failure is always an acceptable outcome
		}
		cert := qbd.CertifyR(r, a0, a1, a2, certify.Tolerances{})
		if cert.VerifyR() != nil {
			return // uncertified results carry no validity claim
		}
		// Certified: re-derive every claimed invariant independently.
		if !r.Finite() {
			t.Fatalf("certified R has non-finite entries: %v", r)
		}
		for i := 0; i < r.Rows(); i++ {
			for j := 0; j < r.Cols(); j++ {
				if r.At(i, j) < -1e-8 {
					t.Fatalf("certified R has negative entry (%d,%d) = %g", i, j, r.At(i, j))
				}
			}
		}
		scale := a0.InfNorm() + a1.InfNorm() + a2.InfNorm()
		if res := qbd.ResidualR(r, a0, a1, a2) / scale; res > certify.DefaultTolerances().Residual {
			t.Fatalf("certified R has relative residual %g beyond tolerance", res)
		}
	})
}

// FuzzRMatrixNewton is the Newton-rung soundness fuzz: with the Newton
// cyclic-reduction rung forced on (NewtonMinOrder lowered so the 2×2
// fuzz blocks qualify), every solve must end in exactly one of two
// states — a certified finite R, or a typed failure. A Newton attempt
// that diverges, hits a singular I−D₁ pivot, or contaminates its
// iterates with NaN must be rejected by the in-ladder certification and
// fall through to the classical rungs; NaN must never escape into a
// returned R, certified or not.
func FuzzRMatrixNewton(f *testing.F) {
	f.Add(0.4, 0.1, 0.05, 0.3, 1.2, 0.9, 0.2, 1.1, 0.3, 0.2)
	f.Add(2.0, 0.0, 0.0, 2.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0)
	f.Add(0.01, 0.5, 0.5, 0.01, 3.0, 0.1, 0.1, 3.0, 5.0, 5.0)
	f.Add(1e3, 1e-6, 1e-6, 1e3, 1e3, 0.0, 0.0, 1e3, 1e3, 1e3)
	f.Fuzz(func(t *testing.T, a00, a01, a10, a11, d00, d01, d10, d11, u0, u1 float64) {
		clampRate := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Min(math.Abs(v), 1e3)
		}
		a0 := matrix.NewFromRows([][]float64{{clampRate(a00), clampRate(a01)}, {clampRate(a10), clampRate(a11)}})
		a2 := matrix.NewFromRows([][]float64{{clampRate(d00), clampRate(d01)}, {clampRate(d10), clampRate(d11)}})
		a1 := matrix.New(2, 2)
		a1.Set(0, 1, clampRate(u0))
		a1.Set(1, 0, clampRate(u1))
		for i := 0; i < 2; i++ {
			var row float64
			for j := 0; j < 2; j++ {
				row += a0.At(i, j) + a1.At(i, j) + a2.At(i, j)
			}
			a1.Add(i, i, -row)
		}
		if a1.At(0, 0) >= -1e-9 || a1.At(1, 1) >= -1e-9 {
			return // degenerate: no exit rate, uniformization undefined
		}

		r, err := qbd.RMatrix(a0, a1, a2, qbd.RMatrixOptions{Newton: true, NewtonMinOrder: 2})
		if err != nil {
			return // typed failure: acceptable, as long as nothing leaked
		}
		if !r.Finite() {
			t.Fatalf("Newton-enabled solve returned non-finite R: %v", r)
		}
		cert := qbd.CertifyR(r, a0, a1, a2, certify.Tolerances{})
		if cert.VerifyR() != nil {
			return // uncertified results carry no validity claim
		}
		for i := 0; i < r.Rows(); i++ {
			for j := 0; j < r.Cols(); j++ {
				if r.At(i, j) < -1e-8 {
					t.Fatalf("certified Newton R has negative entry (%d,%d) = %g", i, j, r.At(i, j))
				}
			}
		}
		scale := a0.InfNorm() + a1.InfNorm() + a2.InfNorm()
		if res := qbd.ResidualR(r, a0, a1, a2) / scale; res > certify.DefaultTolerances().Residual {
			t.Fatalf("certified Newton R has relative residual %g beyond tolerance", res)
		}
	})
}
