package certify

import "math"

// Tolerances are the certification thresholds. All residuals are
// relative: the R residual to the block-norm scale ‖A₀‖+‖A₁‖+‖A₂‖, the
// balance residual to the generator's rate scale.
type Tolerances struct {
	// Residual bounds ‖A₀ + R·A₁ + R²·A₂‖∞ / (‖A₀‖∞+‖A₁‖∞+‖A₂‖∞).
	Residual float64 `json:"residual"`
	// Mass bounds |Σπ − 1| and the most negative stationary entry.
	Mass float64 `json:"mass"`
	// Balance bounds the boundary balance-equation residual relative to
	// the generator's rate scale.
	Balance float64 `json:"balance"`
}

// DefaultTolerances are deliberately loose relative to the solvers'
// iteration tolerance (1e-12): a healthy solve certifies with orders of
// magnitude to spare, while contamination, stalled iterations and
// mass-losing boundary solves are still caught.
func DefaultTolerances() Tolerances {
	return Tolerances{Residual: 1e-6, Mass: 1e-6, Balance: 1e-5}
}

// Certificate is the machine-checkable validity record attached to every
// matrix-geometric solution. Producers (internal/qbd) fill the measured
// fields; Verify/VerifyR re-derive pass/fail from them, so a consumer
// holding only the certificate can re-audit the claim.
//
// TotalMass == 0 means the boundary-level checks were not performed (an
// R-only certificate, e.g. from the fallback-ladder rung tests); a real
// stationary solve always has mass ≈ 1.
type Certificate struct {
	// Finite is false when any entry of R or the stationary vectors is
	// NaN or ±Inf.
	Finite bool `json:"finite"`
	// Residual is the relative fixed-point residual of R.
	Residual float64 `json:"residual"`
	// SpectralRadius is a rigorous upper bound on sp(R).
	SpectralRadius float64 `json:"spectralRadius"`
	// TotalMass is the total stationary probability (boundary + geometric
	// tail); 0 when unchecked.
	TotalMass float64 `json:"totalMass,omitempty"`
	// MinEntry is the most negative stationary-vector entry (≥ 0 when
	// clean).
	MinEntry float64 `json:"minEntry,omitempty"`
	// BoundaryResidual is the relative residual of the boundary balance
	// equations.
	BoundaryResidual float64 `json:"boundaryResidual,omitempty"`
	// BoundaryCond estimates the ∞-norm condition number of the boundary
	// linear system (from its reusable LU factorization).
	BoundaryCond float64 `json:"boundaryCond,omitempty"`
	// Iterations is the total iteration count spent across all fallback
	// rungs attempted.
	Iterations int `json:"iterations,omitempty"`
	// Path records the fallback ladder: one "rung: outcome" entry per
	// attempt, the last being the rung that produced the result.
	Path []string `json:"path,omitempty"`
	// Degraded marks a result that was *not* produced analytically — the
	// class fell back to discrete-event simulation after every analytic
	// rung failed certification.
	Degraded bool `json:"degraded,omitempty"`
	// Tol are the thresholds this certificate was judged against.
	Tol Tolerances `json:"tol"`
}

// VerifyR checks the R-matrix-level invariants only: finiteness and the
// fixed-point residual. Used between fallback-ladder rungs, where an
// sp(R) ≥ 1 bound is a stability verdict (handled separately), not a
// numerical failure.
func (c *Certificate) VerifyR() error {
	if !c.Finite {
		return &Failure{Kind: ErrNumericContaminated, Stage: "certificate", Err: errNonFinite}
	}
	if math.IsNaN(c.Residual) || c.Residual > c.Tol.Residual {
		return &Failure{Kind: ErrNotConverged, Stage: "certificate", Residual: c.Residual}
	}
	return nil
}

// Verify checks every invariant the certificate records: the R-level
// checks plus sp(R) < 1, probability-vector sanity and boundary balance.
// It returns nil for a fully certified solution and a typed *Failure
// naming the first violated invariant otherwise.
func (c *Certificate) Verify() error {
	if err := c.VerifyR(); err != nil {
		return err
	}
	if c.SpectralRadius >= 1 {
		return &Failure{Kind: ErrUnstableClass, Stage: "certificate", Residual: c.SpectralRadius}
	}
	if c.TotalMass != 0 { // boundary-level checks performed
		if math.Abs(c.TotalMass-1) > c.Tol.Mass || c.MinEntry < -c.Tol.Mass {
			return &Failure{Kind: ErrNumericContaminated, Stage: "certificate",
				Residual: math.Abs(c.TotalMass - 1)}
		}
		if math.IsNaN(c.BoundaryResidual) || c.BoundaryResidual > c.Tol.Balance {
			return &Failure{Kind: ErrSingularBoundary, Stage: "certificate", Residual: c.BoundaryResidual}
		}
	}
	return nil
}

var errNonFinite = errNonFiniteType{}

type errNonFiniteType struct{}

func (errNonFiniteType) Error() string { return "non-finite entries" }
