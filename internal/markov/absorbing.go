package markov

import (
	"fmt"

	"repro/internal/matrix"
)

// AbsorbingChain is a CTMC partitioned into transient states with
// subgenerator T and one or more absorbing states. Exit rates to the
// absorbing set are implied by T's row-sum deficits; optional per-target
// rates can be supplied for absorption-probability queries.
//
// This is the structure behind both phase-type distributions (paper §2.5)
// and the Theorem 4.3 construction, where "class p stops being served" —
// by quantum expiry or queue emptying — is modeled as absorption.
type AbsorbingChain struct {
	T *matrix.Dense // subgenerator over transient states

	factor *matrix.LU // cached LU of (−T)
}

// NewAbsorbingChain validates and wraps a subgenerator. Every transient
// state must eventually reach absorption (i.e. −T must be non-singular).
func NewAbsorbingChain(t *matrix.Dense) (*AbsorbingChain, error) {
	if t.Rows() != t.Cols() {
		return nil, fmt.Errorf("markov: subgenerator is %dx%d, want square", t.Rows(), t.Cols())
	}
	f, err := matrix.Factorize(matrix.Scaled(-1, t))
	if err != nil {
		return nil, fmt.Errorf("markov: transient states cannot all reach absorption: %w", err)
	}
	return &AbsorbingChain{T: t, factor: f}, nil
}

// AbsorptionMoments returns the first k raw moments of the absorption time
// starting from the distribution init over transient states:
// E[τᵏ] = k!·init·(−T)⁻ᵏ·e.
func (c *AbsorbingChain) AbsorptionMoments(init []float64, k int) []float64 {
	if len(init) != c.T.Rows() {
		panic(fmt.Sprintf("markov: init has %d entries, chain has %d transient states", len(init), c.T.Rows()))
	}
	if k < 1 {
		panic(fmt.Sprintf("markov: AbsorptionMoments(%d), want k >= 1", k))
	}
	moments := make([]float64, k)
	x := matrix.Ones(c.T.Rows())
	fact := 1.0
	for i := 1; i <= k; i++ {
		x = c.factor.SolveVec(x)
		fact *= float64(i)
		moments[i-1] = fact * matrix.Dot(init, x)
	}
	return moments
}

// MeanAbsorptionTime returns E[τ] from init.
func (c *AbsorbingChain) MeanAbsorptionTime(init []float64) float64 {
	return c.AbsorptionMoments(init, 1)[0]
}

// ExpectedVisits returns init·(−T)⁻¹, the expected total time spent in each
// transient state before absorption.
func (c *AbsorbingChain) ExpectedVisits(init []float64) []float64 {
	if len(init) != c.T.Rows() {
		panic(fmt.Sprintf("markov: init has %d entries, chain has %d transient states", len(init), c.T.Rows()))
	}
	// Solve xᵀ(−T) = initᵀ, i.e. (−T)ᵀ x = init.
	return c.factor.SolveTransposed(init)
}

// AbsorptionProbabilities returns, for exit-rate matrix B (transient ×
// targets), the probability of absorbing into each target starting from
// init: init·(−T)⁻¹·B.
func (c *AbsorbingChain) AbsorptionProbabilities(init []float64, b *matrix.Dense) []float64 {
	if b.Rows() != c.T.Rows() {
		panic(fmt.Sprintf("markov: B has %d rows, chain has %d transient states", b.Rows(), c.T.Rows()))
	}
	return matrix.VecMul(c.ExpectedVisits(init), b)
}
