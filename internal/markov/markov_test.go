package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/phase"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// mm1Generator builds the truncated M/M/1 generator on states 0..n-1.
func mm1Generator(lambda, mu float64, n int) *matrix.Dense {
	q := matrix.New(n, n)
	for i := 0; i < n; i++ {
		if i+1 < n {
			q.Set(i, i+1, lambda)
		}
		if i > 0 {
			q.Set(i, i-1, mu)
		}
	}
	CompleteDiagonal(q)
	return q
}

func TestValidateGenerator(t *testing.T) {
	q := mm1Generator(1, 2, 5)
	if err := ValidateGenerator(q, 1e-12); err != nil {
		t.Fatal(err)
	}
	bad := q.Clone()
	bad.Set(0, 1, -1)
	if err := ValidateGenerator(bad, 1e-12); err == nil {
		t.Fatal("expected error for negative off-diagonal")
	}
	bad2 := q.Clone()
	bad2.Set(0, 0, 5)
	if err := ValidateGenerator(bad2, 1e-12); err == nil {
		t.Fatal("expected error for nonzero row sum")
	}
	if err := ValidateGenerator(matrix.New(2, 3), 1e-12); err == nil {
		t.Fatal("expected error for non-square")
	}
}

func TestCompleteDiagonal(t *testing.T) {
	q := matrix.New(2, 2)
	q.Set(0, 1, 3)
	q.Set(1, 0, 4)
	CompleteDiagonal(q)
	if q.At(0, 0) != -3 || q.At(1, 1) != -4 {
		t.Fatalf("diagonal wrong: %v", q)
	}
}

func TestStationaryGTHTwoState(t *testing.T) {
	// Rates a: 0→1, b: 1→0 ⇒ π = (b, a)/(a+b).
	q := matrix.New(2, 2)
	q.Set(0, 1, 3)
	q.Set(1, 0, 1)
	CompleteDiagonal(q)
	pi, err := StationaryGTH(q)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(pi[0], 0.25, 1e-12) || !almostEq(pi[1], 0.75, 1e-12) {
		t.Fatalf("pi = %v, want [0.25 0.75]", pi)
	}
}

func TestStationaryGTHMM1(t *testing.T) {
	// Truncated M/M/1 has geometric stationary distribution π_i ∝ ρ^i.
	lambda, mu := 0.8, 2.0
	rho := lambda / mu
	const n = 30
	pi, err := StationaryGTH(mm1Generator(lambda, mu, n))
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for i := 0; i < n; i++ {
		norm += math.Pow(rho, float64(i))
	}
	for i := 0; i < n; i++ {
		want := math.Pow(rho, float64(i)) / norm
		if !almostEq(pi[i], want, 1e-10) {
			t.Fatalf("pi[%d] = %g, want %g", i, pi[i], want)
		}
	}
}

func TestStationaryGTHBalance(t *testing.T) {
	// πQ should be ~0 for a random irreducible generator.
	rng := rand.New(rand.NewSource(3))
	const n = 12
	q := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				q.Set(i, j, rng.Float64()+0.01)
			}
		}
	}
	CompleteDiagonal(q)
	pi, err := StationaryGTH(q)
	if err != nil {
		t.Fatal(err)
	}
	res := matrix.VecMul(pi, q)
	for i, v := range res {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("residual[%d] = %g", i, v)
		}
	}
	if !almostEq(matrix.VecSum(pi), 1, 1e-12) {
		t.Fatalf("pi sums to %g", matrix.VecSum(pi))
	}
}

func TestStationaryGTHStiff(t *testing.T) {
	// Rates spanning 8 orders of magnitude; GTH must stay accurate.
	q := matrix.New(3, 3)
	q.Set(0, 1, 1e8)
	q.Set(1, 2, 1)
	q.Set(2, 0, 1e-4)
	CompleteDiagonal(q)
	pi, err := StationaryGTH(q)
	if err != nil {
		t.Fatal(err)
	}
	res := matrix.VecMul(pi, q)
	for _, v := range res {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("residual %v too large", res)
		}
	}
}

func TestStationaryGTHReducible(t *testing.T) {
	// Two disconnected 1-cycles: reducible.
	q := matrix.New(4, 4)
	q.Set(0, 1, 1)
	q.Set(1, 0, 1)
	q.Set(2, 3, 1)
	q.Set(3, 2, 1)
	CompleteDiagonal(q)
	if _, err := StationaryGTH(q); err != ErrReducible {
		t.Fatalf("err = %v, want ErrReducible", err)
	}
}

func TestStationaryDTMC(t *testing.T) {
	p := matrix.NewFromRows([][]float64{{0.5, 0.5}, {0.2, 0.8}})
	pi, err := StationaryDTMC(p)
	if err != nil {
		t.Fatal(err)
	}
	// π = (2/7, 5/7).
	if !almostEq(pi[0], 2.0/7, 1e-12) || !almostEq(pi[1], 5.0/7, 1e-12) {
		t.Fatalf("pi = %v, want [2/7 5/7]", pi)
	}
}

func TestUniformizeStationaryEquivalence(t *testing.T) {
	// §2.4: the uniformized DTMC has the same stationary vector as the CTMC.
	q := mm1Generator(1, 3, 10)
	p, rate := Uniformize(q)
	if rate <= 0 {
		t.Fatalf("rate = %g", rate)
	}
	piC, err := StationaryGTH(q)
	if err != nil {
		t.Fatal(err)
	}
	piD, err := StationaryDTMC(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range piC {
		if !almostEq(piC[i], piD[i], 1e-10) {
			t.Fatalf("pi mismatch at %d: %g vs %g", i, piC[i], piD[i])
		}
	}
}

func TestUniformizeRowsStochastic(t *testing.T) {
	q := mm1Generator(2, 5, 8)
	p, _ := Uniformize(q)
	for i, s := range p.RowSums() {
		if !almostEq(s, 1, 1e-12) {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
	for i := 0; i < p.Rows(); i++ {
		for j := 0; j < p.Cols(); j++ {
			if p.At(i, j) < 0 {
				t.Fatalf("negative P[%d][%d] = %g", i, j, p.At(i, j))
			}
		}
	}
}

func TestTransientConvergesToStationary(t *testing.T) {
	q := mm1Generator(1, 2, 12)
	p0 := make([]float64, 12)
	p0[0] = 1
	pt := Transient(q, p0, 200)
	pi, err := StationaryGTH(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if !almostEq(pt[i], pi[i], 1e-6) {
			t.Fatalf("transient(200)[%d] = %g, stationary %g", i, pt[i], pi[i])
		}
	}
}

func TestTransientTwoStateExact(t *testing.T) {
	// Two-state chain 0↔1 with rates a, b:
	// p00(t) = b/(a+b) + a/(a+b)·e^{−(a+b)t}.
	a, b := 2.0, 3.0
	q := matrix.New(2, 2)
	q.Set(0, 1, a)
	q.Set(1, 0, b)
	CompleteDiagonal(q)
	for _, tm := range []float64{0.1, 0.5, 1, 2} {
		pt := Transient(q, []float64{1, 0}, tm)
		want := b/(a+b) + a/(a+b)*math.Exp(-(a+b)*tm)
		if !almostEq(pt[0], want, 1e-9) {
			t.Fatalf("p00(%g) = %g, want %g", tm, pt[0], want)
		}
	}
}

func TestTransientAtZero(t *testing.T) {
	q := mm1Generator(1, 2, 4)
	p0 := []float64{0, 1, 0, 0}
	pt := Transient(q, p0, 0)
	for i := range p0 {
		if pt[i] != p0[i] {
			t.Fatalf("Transient(0) changed the distribution: %v", pt)
		}
	}
}

func TestSCCSimple(t *testing.T) {
	// 0→1→2→0 is one SCC; 3 is its own (only reachable from 2).
	adj := map[[2]int]bool{{0, 1}: true, {1, 2}: true, {2, 0}: true, {2, 3}: true}
	comps := StronglyConnectedComponents(4, func(i, j int) bool { return adj[[2]int{i, j}] })
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1])}
	if !((sizes[0] == 1 && sizes[1] == 3) || (sizes[0] == 3 && sizes[1] == 1)) {
		t.Fatalf("component sizes %v, want {1,3}", sizes)
	}
}

func TestSCCLargeCycleIterative(t *testing.T) {
	// A 20000-node cycle would blow a recursive Tarjan's stack.
	const n = 20000
	comps := StronglyConnectedComponents(n, func(i, j int) bool { return j == (i+1)%n })
	if len(comps) != 1 || len(comps[0]) != n {
		t.Fatalf("cycle should be one SCC of size %d", n)
	}
}

func TestIsIrreducible(t *testing.T) {
	if !IsIrreducible(mm1Generator(1, 1, 6), 1e-15) {
		t.Fatal("M/M/1 chain should be irreducible")
	}
	q := matrix.New(3, 3)
	q.Set(0, 1, 1)
	q.Set(1, 0, 1)
	// state 2 isolated
	CompleteDiagonal(q)
	if IsIrreducible(q, 1e-15) {
		t.Fatal("chain with isolated state should be reducible")
	}
	if IsIrreducible(matrix.New(0, 0), 1e-15) {
		t.Fatal("empty chain should not be irreducible")
	}
}

func TestAbsorbingChainMatchesPhaseType(t *testing.T) {
	// Absorption-time moments of the chain underlying a PH distribution
	// must equal the distribution's moments.
	d := phase.Convolve(phase.Erlang(3, 1.5), phase.Exponential(0.7))
	c, err := NewAbsorbingChain(d.S)
	if err != nil {
		t.Fatal(err)
	}
	ms := c.AbsorptionMoments(d.Alpha, 3)
	for k := 1; k <= 3; k++ {
		if !almostEq(ms[k-1], d.Moment(k), 1e-9*(1+d.Moment(k))) {
			t.Fatalf("moment %d = %g, want %g", k, ms[k-1], d.Moment(k))
		}
	}
	if !almostEq(c.MeanAbsorptionTime(d.Alpha), d.Mean(), 1e-10) {
		t.Fatal("MeanAbsorptionTime disagrees with Mean")
	}
}

func TestAbsorbingChainRejectsNonAbsorbing(t *testing.T) {
	// A zero subgenerator never absorbs.
	if _, err := NewAbsorbingChain(matrix.New(2, 2)); err == nil {
		t.Fatal("expected error for non-absorbing subgenerator")
	}
}

func TestExpectedVisits(t *testing.T) {
	// Single transient state with exit rate 2: expected time = 1/2.
	tmat := matrix.New(1, 1)
	tmat.Set(0, 0, -2)
	c, err := NewAbsorbingChain(tmat)
	if err != nil {
		t.Fatal(err)
	}
	v := c.ExpectedVisits([]float64{1})
	if !almostEq(v[0], 0.5, 1e-12) {
		t.Fatalf("visits = %v, want [0.5]", v)
	}
}

func TestAbsorptionProbabilities(t *testing.T) {
	// One transient state exits to target A at rate 1 and target B at rate 3.
	tmat := matrix.New(1, 1)
	tmat.Set(0, 0, -4)
	c, err := NewAbsorbingChain(tmat)
	if err != nil {
		t.Fatal(err)
	}
	b := matrix.NewFromRows([][]float64{{1, 3}})
	probs := c.AbsorptionProbabilities([]float64{1}, b)
	if !almostEq(probs[0], 0.25, 1e-12) || !almostEq(probs[1], 0.75, 1e-12) {
		t.Fatalf("probs = %v, want [0.25 0.75]", probs)
	}
}

func TestPropertyGTHBalanceRandom(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%8) + 2
		rng := rand.New(rand.NewSource(seed))
		q := matrix.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					q.Set(i, j, rng.Float64()*2+1e-3)
				}
			}
		}
		CompleteDiagonal(q)
		pi, err := StationaryGTH(q)
		if err != nil {
			return false
		}
		if !almostEq(matrix.VecSum(pi), 1, 1e-10) {
			return false
		}
		for _, v := range matrix.VecMul(pi, q) {
			if math.Abs(v) > 1e-9 {
				return false
			}
		}
		for _, p := range pi {
			if p <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransientIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := mm1Generator(0.5+rng.Float64()*2, 0.5+rng.Float64()*3, 8)
		p0 := make([]float64, 8)
		p0[rng.Intn(8)] = 1
		pt := Transient(q, p0, rng.Float64()*5)
		var s float64
		for _, v := range pt {
			if v < -1e-12 {
				return false
			}
			s += v
		}
		return almostEq(s, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
