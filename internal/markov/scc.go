package markov

import "repro/internal/matrix"

// StronglyConnectedComponents returns the strongly connected components of
// the directed graph whose edge (i, j) exists when adj(i, j) is true, using
// an iterative Tarjan algorithm (no recursion, so state spaces of any size
// are safe). Components are returned in reverse topological order.
func StronglyConnectedComponents(n int, adj func(i, j int) bool) [][]int {
	succ := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && adj(i, j) {
				succ[i] = append(succ[i], j)
			}
		}
	}
	return sccFromAdj(succ)
}

func sccFromAdj(succ [][]int) [][]int {
	n := len(succ)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		comps  [][]int
		next   int
		frames []frame
	)
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.edge == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.edge < len(succ[v]) {
				w := succ[v][f.edge]
				f.edge++
				if index[w] == unvisited {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comps
}

type frame struct {
	v    int
	edge int
}

// IsIrreducible reports whether the generator's transition graph is a
// single strongly connected component. Entries above tol count as edges.
func IsIrreducible(q *matrix.Dense, tol float64) bool {
	n := q.Rows()
	if n == 0 {
		return false
	}
	comps := StronglyConnectedComponents(n, func(i, j int) bool {
		return q.At(i, j) > tol
	})
	return len(comps) == 1
}
