package markov

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

// sparseFromDense splits a dense generator into the transposed CSR
// off-diagonal structure plus the diagonal vector StationarySparse wants.
func sparseFromDense(q *matrix.Dense) (*matrix.Sparse, []float64) {
	n := q.Rows()
	coo := matrix.NewCOO(n, n)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				diag[i] = q.At(i, i)
				continue
			}
			coo.Add(j, i, q.At(i, j)) // transposed
		}
	}
	return coo.ToCSR(), diag
}

func TestStationarySparseMatchesGTH(t *testing.T) {
	q := mm1Generator(0.8, 2, 40)
	qt, diag := sparseFromDense(q)
	pi, err := StationarySparse(qt, diag, 1e-13, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := StationaryGTH(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(pi[i]-want[i]) > 1e-9 {
			t.Fatalf("pi[%d] = %g, GTH %g", i, pi[i], want[i])
		}
	}
	if res := SparseResidual(qt, diag, pi); res > 1e-10 {
		t.Fatalf("residual %g", res)
	}
}

func TestStationarySparseTwoState(t *testing.T) {
	q := matrix.New(2, 2)
	q.Set(0, 1, 3)
	q.Set(1, 0, 1)
	CompleteDiagonal(q)
	qt, diag := sparseFromDense(q)
	pi, err := StationarySparse(qt, diag, 1e-13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.25) > 1e-10 || math.Abs(pi[1]-0.75) > 1e-10 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestStationarySparseRejectsBadDiag(t *testing.T) {
	qt, diag := sparseFromDense(mm1Generator(1, 2, 5))
	diag[2] = 0
	if _, err := StationarySparse(qt, diag, 1e-12, 100); err == nil {
		t.Fatal("expected non-negative diagonal error")
	}
	if _, err := StationarySparse(qt, diag[:2], 1e-12, 100); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestStationarySparseNoConverge(t *testing.T) {
	qt, diag := sparseFromDense(mm1Generator(0.99, 1, 200))
	// One sweep cannot converge a 200-state near-critical chain.
	if _, err := StationarySparse(qt, diag, 1e-15, 1); err != matrix.ErrNoConverge {
		t.Fatalf("err = %v, want ErrNoConverge", err)
	}
}
