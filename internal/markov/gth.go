package markov

import (
	"errors"

	"repro/internal/matrix"
)

// ErrReducible is returned when a chain that must be irreducible is not.
var ErrReducible = errors.New("markov: chain is not irreducible")

// StationaryGTH solves πQ = 0, πe = 1 for an irreducible finite generator
// using the Grassmann–Taksar–Heyman elimination. GTH performs no
// subtractions, so it is backward stable even for stiff generators (rates
// spanning many orders of magnitude), which matters here because quantum
// rates and context-switch rates differ by ~100x in the paper's experiments.
//
// The same elimination applies verbatim to a DTMC transition matrix P by
// passing Q = P − I; see StationaryDTMC.
func StationaryGTH(q *matrix.Dense) ([]float64, error) {
	n := q.Rows()
	if q.Cols() != n {
		panic("markov: StationaryGTH of non-square matrix")
	}
	if n == 0 {
		return nil, errors.New("markov: empty chain")
	}
	if n == 1 {
		return []float64{1}, nil
	}
	a := q.Clone()
	// Backward elimination of states n-1 … 1.
	for k := n - 1; k >= 1; k-- {
		var s float64
		for j := 0; j < k; j++ {
			s += a.At(k, j)
		}
		if s <= 0 {
			// State k cannot reach the remaining states: reducible.
			return nil, ErrReducible
		}
		for i := 0; i < k; i++ {
			a.Set(i, k, a.At(i, k)/s)
		}
		for i := 0; i < k; i++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				if j == i {
					continue
				}
				a.Add(i, j, aik*a.At(k, j))
			}
		}
	}
	// Back substitution.
	pi := make([]float64, n)
	pi[0] = 1
	for k := 1; k < n; k++ {
		var s float64
		for i := 0; i < k; i++ {
			s += pi[i] * a.At(i, k)
		}
		pi[k] = s
	}
	total := matrix.VecSum(pi)
	if total <= 0 {
		return nil, ErrReducible
	}
	matrix.ScaleVec(1/total, pi)
	return pi, nil
}

// StationaryDTMC solves πP = π, πe = 1 for an irreducible stochastic matrix
// via GTH on P − I.
func StationaryDTMC(p *matrix.Dense) ([]float64, error) {
	return StationaryGTH(matrix.Diff(p, matrix.Identity(p.Rows())))
}
