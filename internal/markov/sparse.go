package markov

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// StationarySparse solves πQ = 0, πe = 1 for a large sparse irreducible
// generator by Gauss–Seidel iteration on the balance equations
//
//	π_j·(−q_jj) = Σ_{i≠j} π_i·q_ij,
//
// sweeping in place (each state immediately uses its neighbours' freshest
// values) and renormalizing per sweep. The input is the generator held by
// destination: qT must be the TRANSPOSE of Q as CSR, so row j lists the
// incoming rates of state j; diag holds q_jj (negative).
//
// This backs the exact global chains (e.g. the joint two-class model)
// whose 10⁴–10⁵ states rule out dense GTH.
func StationarySparse(qT *matrix.Sparse, diag []float64, tol float64, maxSweeps int) ([]float64, error) {
	n := qT.Rows()
	if n == 0 {
		return nil, fmt.Errorf("markov: empty chain")
	}
	if len(diag) != n {
		return nil, fmt.Errorf("markov: %d diagonal entries for %d states", len(diag), n)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxSweeps <= 0 {
		maxSweeps = 20000
	}
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		maxRel := 0.0
		for j := 0; j < n; j++ {
			if diag[j] >= 0 {
				return nil, fmt.Errorf("markov: non-negative diagonal %g at state %d", diag[j], j)
			}
			var inflow float64
			qT.RowRange(j, func(i int, v float64) {
				if i != j {
					inflow += pi[i] * v
				}
			})
			next := inflow / (-diag[j])
			old := pi[j]
			pi[j] = next
			if d := math.Abs(next - old); d > maxRel*(math.Abs(next)+1e-300) {
				if next != 0 {
					rel := d / (math.Abs(next) + 1e-300)
					if rel > maxRel {
						maxRel = rel
					}
				}
			}
		}
		// Renormalize to keep the iteration on the simplex.
		var sum float64
		for _, v := range pi {
			sum += v
		}
		if sum <= 0 {
			return nil, fmt.Errorf("markov: Gauss-Seidel collapsed to zero")
		}
		matrix.ScaleVec(1/sum, pi)
		if maxRel < tol {
			return pi, nil
		}
	}
	return pi, matrix.ErrNoConverge
}

// SparseResidual returns ‖πQ‖∞ given the transposed generator and
// diagonal, a correctness check for StationarySparse output.
func SparseResidual(qT *matrix.Sparse, diag []float64, pi []float64) float64 {
	n := qT.Rows()
	var worst float64
	for j := 0; j < n; j++ {
		var flow float64
		qT.RowRange(j, func(i int, v float64) {
			if i != j {
				flow += pi[i] * v
			}
		})
		flow += pi[j] * diag[j]
		if a := math.Abs(flow); a > worst {
			worst = a
		}
	}
	return worst
}
