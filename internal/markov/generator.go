// Package markov provides the continuous-time Markov chain machinery the
// gang-scheduling analysis builds on (paper §2.2–§2.4): generator
// validation, stationary distributions via the numerically stable GTH
// elimination, uniformization (the discrete-time embedding of §2.4),
// transient solutions, strong-connectivity (irreducibility) checks, and
// absorbing-chain absorption-time moments used by the Theorem 4.3
// effective-quantum construction.
package markov

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// ValidateGenerator checks that q is an infinitesimal generator: square,
// non-negative off-diagonal, row sums zero within tol.
func ValidateGenerator(q *matrix.Dense, tol float64) error {
	n := q.Rows()
	if q.Cols() != n {
		return fmt.Errorf("markov: generator is %dx%d, want square", n, q.Cols())
	}
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			v := q.At(i, j)
			if i != j && v < -tol {
				return fmt.Errorf("markov: negative off-diagonal q[%d][%d] = %g", i, j, v)
			}
			row += v
		}
		if math.Abs(row) > tol {
			return fmt.Errorf("markov: row %d sums to %g, want 0", i, row)
		}
	}
	return nil
}

// CompleteDiagonal sets each diagonal entry of q to the negative sum of the
// off-diagonal entries in its row, turning a rate matrix into a generator.
func CompleteDiagonal(q *matrix.Dense) {
	n := q.Rows()
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			if j != i {
				s += q.At(i, j)
			}
		}
		q.Set(i, i, -s)
	}
}

// MaxExitRate returns q_max = max_i |q_ii|, the uniformization rate.
func MaxExitRate(q *matrix.Dense) float64 {
	var mx float64
	for i := 0; i < q.Rows(); i++ {
		if r := -q.At(i, i); r > mx {
			mx = r
		}
	}
	return mx
}

// Uniformize returns the DTMC transition matrix P = Q/q + I of §2.4 along
// with the uniformization rate q (slightly inflated above MaxExitRate so P
// has strictly positive diagonal, which makes the embedded chain aperiodic).
func Uniformize(q *matrix.Dense) (*matrix.Dense, float64) {
	rate := MaxExitRate(q) * 1.0000001
	if rate == 0 {
		return matrix.Identity(q.Rows()), 0
	}
	p := matrix.Sum(matrix.Scaled(1/rate, q), matrix.Identity(q.Rows()))
	return p, rate
}

// Transient returns the state distribution p(t) = p0·exp(Q·t), evaluated by
// uniformization with the Poisson series truncated at absolute error ~1e-12.
func Transient(q *matrix.Dense, p0 []float64, t float64) []float64 {
	if t < 0 {
		panic(fmt.Sprintf("markov: Transient at t = %g < 0", t))
	}
	if len(p0) != q.Rows() {
		panic(fmt.Sprintf("markov: p0 has %d entries, generator %d states", len(p0), q.Rows()))
	}
	p, rate := Uniformize(q)
	out := make([]float64, len(p0))
	if rate == 0 || t == 0 {
		copy(out, p0)
		return out
	}
	qt := rate * t
	v := append([]float64(nil), p0...)
	logw := -qt
	var cum float64
	for k := 0; ; k++ {
		w := math.Exp(logw)
		for i := range out {
			out[i] += w * v[i]
		}
		cum += w
		// Stop once past the Poisson mode with either the mass accounted
		// for or the weights negligible (rounding can leave 1−cum pinned
		// above any tolerance, so the weight test is the backstop).
		if float64(k) > qt && (1-cum < 1e-13 || w < 1e-17) {
			break
		}
		v = matrix.VecMul(v, p)
		logw += math.Log(qt) - math.Log(float64(k+1))
	}
	// Renormalize to absorb series truncation error.
	if s := matrix.VecSum(out); s > 0 {
		matrix.ScaleVec(1/s, out)
	}
	return out
}
