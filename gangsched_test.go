package gangsched

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func newBenchRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func demoModel() *Model {
	return &Model{
		Processors: 8,
		Classes: []ClassParams{
			{Partition: 2, Arrival: Exponential(0.8), Service: Exponential(1),
				Quantum: Exponential(1), Overhead: Exponential(1 / 0.01)},
			{Partition: 8, Arrival: Exponential(0.3), Service: Exponential(1),
				Quantum: Exponential(1), Overhead: Exponential(1 / 0.01)},
		},
	}
}

func TestPublicSolve(t *testing.T) {
	res, err := Solve(demoModel(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("fixed point did not converge")
	}
	for p, cr := range res.Classes {
		if !cr.Stable || cr.N <= 0 || cr.T <= 0 {
			t.Fatalf("class %d: %+v", p, cr)
		}
	}
}

func TestPublicSolveHeavyTrafficUpperBounds(t *testing.T) {
	m := demoModel()
	ht, err := SolveHeavyTraffic(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for p := range fp.Classes {
		if fp.Classes[p].N > ht.Classes[p].N+1e-9 {
			t.Fatalf("class %d: fixed point above heavy-traffic bound", p)
		}
	}
}

func TestPublicSimulateAgreesWithSolve(t *testing.T) {
	// Validate at substantial load (ρ = 0.85), where the Theorem 4.3
	// decomposition is accurate; light-load accuracy bounds live in the
	// internal/sim cross-validation tests.
	m := demoModel()
	m.Classes[0].Arrival = Exponential(1.4) // ρ₀ = 0.35
	m.Classes[1].Arrival = Exponential(0.5) // ρ₁ = 0.50
	ana, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	simr, err := Simulate(SimConfig{Model: m, Seed: 4, Warmup: 2e4, Horizon: 3.2e5})
	if err != nil {
		t.Fatal(err)
	}
	for p := range ana.Classes {
		a, s := ana.Classes[p].N, simr.Classes[p].MeanJobs
		if math.Abs(a-s)/s > 0.30 {
			t.Fatalf("class %d: analytic %g vs simulated %g", p, a, s)
		}
	}
}

func TestPublicBaselines(t *testing.T) {
	m := demoModel()
	cfg := SimConfig{Model: m, Seed: 9, Warmup: 5e3, Horizon: 5.5e4}
	if _, err := SimulateTimeSharing(cfg); err != nil {
		t.Fatal(err)
	}
	alloc := EqualShareAllocation(8, []int{2, 8})
	// The demo mix cannot give class 1 a partition alongside class 0's:
	// verify allocation respects the machine size.
	used := alloc[0]*2 + alloc[1]*8
	if used > 8 {
		t.Fatalf("allocation %v uses %d processors", alloc, used)
	}
	if _, err := SimulateSpaceSharing(SpaceSimConfig{Config: cfg, Partitions: alloc}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicStateDiagram(t *testing.T) {
	dot, err := StateDiagramDOT(demoModel(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "level 0") {
		t.Fatalf("DOT missing structure:\n%s", dot[:200])
	}
}

func TestPublicDistributionHelpers(t *testing.T) {
	if d := Erlang(4, 2); math.Abs(d.Mean()-0.5) > 1e-12 {
		t.Fatalf("Erlang mean %g", d.Mean())
	}
	if d := HyperExponential([]float64{0.5, 0.5}, []float64{1, 2}); d.SCV() <= 1 {
		t.Fatalf("H2 SCV %g", d.SCV())
	}
	if d := Coxian([]float64{1, 2}, []float64{0.5}); d.Order() != 2 {
		t.Fatal("Coxian order")
	}
	d, err := FitMeanSCV(2, 3)
	if err != nil || math.Abs(d.Mean()-2) > 1e-9 {
		t.Fatalf("fit: %v %v", d, err)
	}
}

func TestPublicExactTwoClass(t *testing.T) {
	m := demoModel()
	ex, err := SolveExactTwoClass(m, ExactTwoClassOptions{Truncation: 80})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Solve(m, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		if ex.N[p] <= 0 {
			t.Fatalf("exact N%d = %g", p, ex.N[p])
		}
		// Decomposition below exact (documented bias).
		if fp.Classes[p].N > ex.N[p]*1.02 {
			t.Fatalf("class %d: fixed %g above exact %g", p, fp.Classes[p].N, ex.N[p])
		}
	}
	if ex.Residual > 1e-8 || ex.TruncationMass > 1e-5 {
		t.Fatalf("exact diagnostics: %+v", ex)
	}
}

func TestPublicQueueLengthDist(t *testing.T) {
	res, err := Solve(demoModel(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dist := res.Classes[0].QueueLengthDist(60)
	var mass float64
	for _, q := range dist {
		if q < 0 {
			t.Fatalf("negative probability %g", q)
		}
		mass += q
	}
	if math.Abs(mass-1) > 1e-6 {
		t.Fatalf("distribution mass %g", mass)
	}
	if tp := res.Classes[0].TailProb(0); math.Abs(tp-1) > 1e-9 {
		t.Fatalf("TailProb(0) = %g", tp)
	}
}

func TestPublicUnstable(t *testing.T) {
	m := &Model{
		Processors: 2,
		Classes: []ClassParams{{
			Partition: 2, Arrival: Exponential(5), Service: Exponential(1),
			Quantum: Exponential(1), Overhead: Exponential(100),
		}},
	}
	if _, err := Solve(m, SolveOptions{}); err != ErrAllUnstable {
		t.Fatalf("err = %v, want ErrAllUnstable", err)
	}
}
