// Quickstart: define a two-class gang-scheduled machine, solve it
// analytically, validate against simulation, and print both.
package main

import (
	"fmt"
	"log"

	gangsched "repro"
)

func main() {
	// A 16-processor machine. Interactive jobs use 2-processor partitions
	// (8 can run at once); batch jobs take the whole machine. Quanta are
	// chosen so interactive work gets frequent service.
	m := &gangsched.Model{
		Processors: 16,
		Classes: []gangsched.ClassParams{
			{ // interactive
				Partition: 2,
				Arrival:   gangsched.Exponential(2.0), // 2 jobs/s
				Service:   gangsched.Exponential(1.0), // mean 1 s on 2 procs
				Quantum:   gangsched.Exponential(1 / 0.5),
				Overhead:  gangsched.Exponential(1 / 0.005),
			},
			{ // batch
				Partition: 16,
				Arrival:   gangsched.Exponential(0.1),
				Service:   gangsched.Exponential(0.5), // mean 2 s on all 16
				Quantum:   gangsched.Exponential(1 / 2.0),
				Overhead:  gangsched.Exponential(1 / 0.005),
			},
		},
	}
	fmt.Printf("machine utilization rho = %.3f\n\n", m.Utilization())

	res, err := gangsched.Solve(m, gangsched.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analytic solution (Theorem 4.3 fixed point):")
	for p, cr := range res.Classes {
		fmt.Printf("  class %d: N = %.3f jobs, T = %.3f s, slice skipped %.0f%% of cycles\n",
			p, cr.N, cr.T, 100*cr.Effective.Atom)
	}

	sres, err := gangsched.Simulate(gangsched.SimConfig{
		Model: m, Seed: 7, Warmup: 5e3, Horizon: 1.05e5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulation (same model, same policy):")
	for p, cm := range sres.Classes {
		fmt.Printf("  class %d: N = %.3f ± %.3f, T = %.3f ± %.3f\n",
			p, cm.MeanJobs, cm.MeanJobsCI, cm.MeanResponse, cm.MeanResponseCI)
	}
}
