// Calibration: the paper's model is meant to be driven by measured
// workloads (§3.2 discusses fitting phase-type distributions to empirical
// data). This example plays the full loop an operator would run:
//
//  1. "measure" interarrival and service samples (here synthesized from a
//     hidden ground-truth system the operator cannot see);
//  2. fit phase-type distributions to the samples;
//  3. solve the fitted model and tune the quantum on it;
//  4. verify the tuned operating point by simulating the *ground truth*.
package main

import (
	"fmt"
	"log"
	"math/rand"

	gangsched "repro"
)

func main() {
	// Hidden ground truth: bursty interactive class (hyperexponential
	// service), steady batch class (Erlang service).
	truth := &gangsched.Model{
		Processors: 8,
		Classes: []gangsched.ClassParams{
			{Partition: 1,
				Arrival: gangsched.Exponential(2.0),
				Service: gangsched.HyperExponential([]float64{0.7, 0.3}, []float64{4, 0.5}),
				Quantum: gangsched.Exponential(1), Overhead: gangsched.Exponential(100)},
			{Partition: 8,
				Arrival: gangsched.Erlang(2, 0.25),
				Service: gangsched.Erlang(3, 1.5),
				Quantum: gangsched.Exponential(1), Overhead: gangsched.Exponential(100)},
		},
	}

	// Step 1: collect "measurements" from the live system.
	trace, err := gangsched.GenerateWorkload(truth, 2026, 50000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d interactive and %d batch jobs\n", trace.Jobs(0), trace.Jobs(1))

	// In lieu of instrumented traces, sample the processes directly.
	rng := rand.New(rand.NewSource(9))
	samples := func(d *gangsched.Dist, n int) []float64 {
		out := make([]float64, n)
		s := newSampler(d)
		for i := range out {
			out[i] = s(rng)
		}
		return out
	}

	// Step 2: fit each distribution from its samples.
	fitted := &gangsched.Model{Processors: truth.Processors}
	for p, c := range truth.Classes {
		arr, err := gangsched.FitEmpirical(samples(c.Arrival, 20000))
		if err != nil {
			log.Fatal(err)
		}
		svc, err := gangsched.FitEmpirical(samples(c.Service, 20000))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("class %d: fitted arrival mean %.3f (true %.3f), service SCV %.2f (true %.2f)\n",
			p, arr.Mean(), c.Arrival.Mean(), svc.SCV(), c.Service.SCV())
		fitted.Classes = append(fitted.Classes, gangsched.ClassParams{
			Partition: c.Partition,
			Arrival:   arr,
			Service:   svc,
			Quantum:   c.Quantum,
			Overhead:  c.Overhead,
		})
	}

	// Step 3: tune the quantum on the fitted model, weighting the
	// interactive class 4:1.
	tuned, err := gangsched.TuneQuantum(fitted, gangsched.TuneOptions{Weights: []float64{4, 1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntuned quantum on fitted model: %.3f (weighted N = %.3f, %d solves)\n",
		tuned.Quantum, tuned.Objective, tuned.Evaluations)

	// Step 4: validate against the ground truth by simulation.
	truthTuned := &gangsched.Model{Processors: truth.Processors}
	for _, c := range truth.Classes {
		c.Quantum = c.Quantum.WithMean(tuned.Quantum)
		truthTuned.Classes = append(truthTuned.Classes, c)
	}
	res, err := gangsched.Simulate(gangsched.SimConfig{
		Model: truthTuned, Seed: 3, Warmup: 2e4, Horizon: 2.2e5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ground-truth simulation at the tuned quantum:")
	for p, cm := range res.Classes {
		fmt.Printf("  class %d: N = %.3f ± %.3f, T p50/p95 = %.3f/%.3f\n",
			p, cm.MeanJobs, cm.MeanJobsCI, cm.ResponseP50, cm.ResponseP95)
	}
}

// newSampler adapts the library's exact PH sampler to a closure.
func newSampler(d *gangsched.Dist) func(*rand.Rand) float64 {
	s := gangsched.NewSampler(d)
	return s.Sample
}
