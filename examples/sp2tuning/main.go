// SP2 tuning: the paper's stated purpose is to pick quantum lengths for
// the gang scheduler being built for IBM's SP2 (§1, §5). This example
// sweeps the quantum length of a four-class SP2-like workload mix, locates
// each class's knee (the Figures 2–3 minimum), and reports a recommended
// operating point — using only the analytic model, as an operator would.
package main

import (
	"fmt"
	"log"
	"math"

	gangsched "repro"
)

// sp2Mix models a node pool of an SP2: many small interactive jobs, fewer
// wide batch jobs, with measured (exponential) service demands.
func sp2Mix(quantum float64) *gangsched.Model {
	type class struct {
		g       int
		lam, mu float64
	}
	classes := []class{
		{1, 0.40, 0.50}, // sequential interactive
		{2, 0.40, 1.00}, // small parallel
		{4, 0.40, 2.00}, // medium parallel
		{8, 0.40, 4.00}, // full-machine
	}
	m := &gangsched.Model{Processors: 8}
	for _, c := range classes {
		m.Classes = append(m.Classes, gangsched.ClassParams{
			Partition: c.g,
			Arrival:   gangsched.Exponential(c.lam),
			Service:   gangsched.Exponential(c.mu),
			Quantum:   gangsched.Exponential(1 / quantum),
			Overhead:  gangsched.Exponential(1 / 0.01),
		})
	}
	return m
}

func main() {
	sweep := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1, 1.5, 2, 3, 4, 6}
	fmt.Println("quantum   totalN   maxT      (per-class N)")

	bestQ, bestN := 0.0, math.Inf(1)
	for _, q := range sweep {
		m := sp2Mix(q)
		res, err := gangsched.Solve(m, gangsched.SolveOptions{})
		if err != nil {
			fmt.Printf("%-9.2f unstable (%v)\n", q, err)
			continue
		}
		maxT := 0.0
		ns := make([]float64, len(res.Classes))
		for p, cr := range res.Classes {
			ns[p] = cr.N
			if cr.T > maxT {
				maxT = cr.T
			}
		}
		fmt.Printf("%-9.2f %-8.3f %-9.3f %v\n", q, res.TotalN, maxT, fmtSlice(ns))
		if res.TotalN < bestN {
			bestN, bestQ = res.TotalN, q
		}
	}

	fmt.Printf("\nrecommended quantum ≈ %.2f (total N = %.3f)\n", bestQ, bestN)

	// Confirm the recommendation holds up in simulation.
	m := sp2Mix(bestQ)
	sres, err := gangsched.Simulate(gangsched.SimConfig{
		Model: m, Seed: 2, Warmup: 2e4, Horizon: 2.2e5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated at the recommendation: total N = %.3f\n", sres.TotalMeanJobs)
}

func fmtSlice(xs []float64) string {
	s := "["
	for i, x := range xs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", x)
	}
	return s + "]"
}
