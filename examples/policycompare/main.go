// Policy comparison: the paper's introduction argues gang scheduling
// combines the interactivity of time-sharing with the throughput of
// space-sharing. This example simulates all three policies (plus the §6
// local-switching gang variant) on the same workload and shows where each
// wins.
package main

import (
	"fmt"
	"log"

	gangsched "repro"
)

func workload(rho float64) *gangsched.Model {
	mu := []float64{0.5, 1, 2, 4}
	m := &gangsched.Model{Processors: 8}
	for p := 0; p < 4; p++ {
		m.Classes = append(m.Classes, gangsched.ClassParams{
			Partition: 1 << p,
			Arrival:   gangsched.Exponential(rho),
			Service:   gangsched.Exponential(mu[p]),
			Quantum:   gangsched.Exponential(1),
			Overhead:  gangsched.Exponential(1 / 0.01),
		})
	}
	return m
}

func main() {
	alloc := gangsched.EqualShareAllocation(8, []int{1, 2, 4, 8})
	fmt.Printf("static space-sharing allocation (partitions per class): %v\n", alloc)
	for p, k := range alloc {
		if k == 0 {
			fmt.Printf("  -> class %d needs %d processors and gets no partition: static\n", p, 1<<p)
			fmt.Println("     space-sharing cannot serve it at all (its column shows 'sat').")
		}
	}
	fmt.Println()
	fmt.Println("total mean jobs in system by policy (simulated, paper workload mix)")
	fmt.Printf("%-6s %-12s %-12s %-12s %-12s\n", "rho", "gang", "gang-local", "space", "timeshare")
	for _, rho := range []float64{0.2, 0.4, 0.6, 0.8} {
		m := workload(rho)
		cfg := gangsched.SimConfig{Model: m, Seed: 11, Warmup: 2e4, Horizon: 2.2e5}

		gang, err := gangsched.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		local := cfg
		local.LocalSwitch = true
		gangLocal, err := gangsched.Simulate(local)
		if err != nil {
			log.Fatal(err)
		}
		space, err := gangsched.SimulateSpaceSharing(gangsched.SpaceSimConfig{
			Config:     cfg,
			Partitions: alloc,
		})
		if err != nil {
			log.Fatal(err)
		}
		ts, err := gangsched.SimulateTimeSharing(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.1f %-12s %-12s %-12s %-12s\n",
			rho, capped(gang.TotalMeanJobs), capped(gangLocal.TotalMeanJobs),
			capped(space.TotalMeanJobs), capped(ts.TotalMeanJobs))
	}
	fmt.Println("\nnotes:")
	fmt.Println("  - time-sharing runs one job at a time on the whole machine; it wastes")
	fmt.Println("    space and saturates early.")
	fmt.Println("  - static space-sharing cannot serve the full-machine class at all in")
	fmt.Println("    this mix, and cannot shift capacity between the others.")
	fmt.Println("  - gang scheduling time-shares whole-machine configurations, getting")
	fmt.Println("    both effects; local switching reclaims idle partitions (§6).")
}

// capped renders saturated policies (population growing with the horizon)
// as "sat" instead of a meaningless finite number.
func capped(n float64) string {
	if n > 1000 {
		return "sat"
	}
	return fmt.Sprintf("%.3f", n)
}
