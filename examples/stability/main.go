// Stability exploration: Theorem 4.4 gives the positive-recurrence (drift)
// condition for each class's QBD. Because context switching wastes a
// fraction of every cycle, the stability boundary sits strictly below
// ρ = 1 and depends on the quantum/overhead ratio. This example maps the
// boundary and compares it with the naive ρ < 1 rule.
package main

import (
	"fmt"

	gangsched "repro"
)

func model(rho, quantum, overhead float64) *gangsched.Model {
	mu := []float64{0.5, 1, 2, 4}
	m := &gangsched.Model{Processors: 8}
	for p := 0; p < 4; p++ {
		m.Classes = append(m.Classes, gangsched.ClassParams{
			Partition: 1 << p,
			Arrival:   gangsched.Exponential(rho),
			Service:   gangsched.Exponential(mu[p]),
			Quantum:   gangsched.Exponential(1 / quantum),
			Overhead:  gangsched.Exponential(1 / overhead),
		})
	}
	return m
}

// criticalRho bisects for the largest per-class arrival rate at which the
// heavy-traffic drift condition still holds for every class.
func criticalRho(quantum, overhead float64) float64 {
	lo, hi := 0.01, 1.0
	for i := 0; i < 30; i++ {
		mid := (lo + hi) / 2
		if allStable(model(mid, quantum, overhead)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func allStable(m *gangsched.Model) bool {
	res, err := gangsched.SolveHeavyTraffic(m, gangsched.SolveOptions{})
	if err != nil {
		return false
	}
	for _, cr := range res.Classes {
		if !cr.Stable {
			return false
		}
	}
	return true
}

func main() {
	fmt.Println("stability boundary rho* vs quantum length (overhead = 0.01)")
	fmt.Printf("%-10s %-10s %-24s\n", "quantum", "rho*", "switching loss per cycle")
	for _, q := range []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1, 2, 5} {
		r := criticalRho(q, 0.01)
		loss := 0.01 / (q + 0.01)
		fmt.Printf("%-10.2f %-10.4f %-24.4f\n", q, r, loss)
	}
	fmt.Println()
	fmt.Println("with quanta 10x the overhead the machine loses ~9% of its capacity;")
	fmt.Println("with quanta equal to the overhead it loses half. Theorem 4.4 puts the")
	fmt.Println("boundary almost exactly at rho = quantum/(quantum+overhead) under the")
	fmt.Println("heavy-traffic intervisit, matching the switching-loss argument.")
}
