GO ?= go

.PHONY: build vet test race ci fuzz-short bench bench-sweep bench-kernel bench-compare

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the gate: clean build, vet, and the full suite under the race
# detector. ./... covers every package, including the kernel-heavy ones
# (internal/matrix, internal/qbd, internal/core) whose property tests pin
# the in-place and SSE2 kernels bitwise to their allocating counterparts,
# and internal/sweep, the concurrency-heavy subsystem. The explicit
# race-mode pass over sweep and certify re-runs the fault-injection and
# degradation paths, whose hooks and worker pool are the likeliest place
# for a data race to hide.
ci: build vet race
	$(GO) vet ./... && $(GO) test -race ./internal/sweep/ ./internal/certify/

# fuzz-short is the certification-soundness smoke: 30 seconds of random
# QBD generator blocks must never produce a certified-but-invalid R.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzRMatrixCertify -fuzztime 30s ./internal/certify/

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-sweep regenerates the committed serial-vs-parallel sweep
# throughput baseline (BENCH_sweep.json).
bench-sweep:
	$(GO) test -run '^$$' -bench 'BenchmarkSweep' -benchmem -count 1 ./internal/sweep | tee bench_sweep.out
	awk -f scripts/benchjson.awk bench_sweep.out > BENCH_sweep.json
	rm -f bench_sweep.out
	cat BENCH_sweep.json

# bench-kernel regenerates the committed matrix/QBD kernel baseline
# (BENCH_kernel.json): the live R-matrix solve at three block orders, the
# vendored pre-change kernel on the same inputs, the intervisit
# convolution, and the full Theorem 4.3 fixed point.
BENCH_KERNEL_RE = 'BenchmarkRMatrix$$|BenchmarkRMatrixPre$$|BenchmarkConvolveAll$$|BenchmarkSolveFixedPoint$$'
bench-kernel:
	$(GO) test -run '^$$' -bench $(BENCH_KERNEL_RE) -benchmem -benchtime 1s -count 1 \
		./internal/qbd ./internal/phase ./internal/core | tee bench_kernel.out
	awk -f scripts/benchjson.awk bench_kernel.out > BENCH_kernel.json
	rm -f bench_kernel.out
	cat BENCH_kernel.json

# bench-compare runs the kernel benchmarks fresh and diffs them against
# the committed BENCH_kernel.json so regressions stand out line by line
# (timings wobble; watch ns_per_op magnitudes and the ratio fields).
bench-compare:
	$(GO) test -run '^$$' -bench $(BENCH_KERNEL_RE) -benchmem -benchtime 1s -count 1 \
		./internal/qbd ./internal/phase ./internal/core \
		| awk -f scripts/benchjson.awk > bench_kernel_fresh.json
	-diff -u BENCH_kernel.json bench_kernel_fresh.json && echo "bench-compare: no drift"
	rm -f bench_kernel_fresh.json
