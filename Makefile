GO ?= go

.PHONY: build vet test race ci bench bench-sweep

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ci is the gate: clean build, vet, and the full suite under the race
# detector (the sweep harness is the concurrency-heavy subsystem).
ci: build vet race

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-sweep regenerates the committed serial-vs-parallel sweep
# throughput baseline (BENCH_sweep.json).
bench-sweep:
	$(GO) test -run '^$$' -bench 'BenchmarkSweep' -benchmem -count 1 ./internal/sweep | tee bench_sweep.out
	awk -f scripts/benchjson.awk bench_sweep.out > BENCH_sweep.json
	rm -f bench_sweep.out
	cat BENCH_sweep.json
