GO ?= go

.PHONY: build vet test race race-full ci chaos chaos-short fuzz-short xcheck xcheck-short bench bench-sweep bench-kernel bench-pipeline bench-serve bench-scale bench-huge bench-compare

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race pass covers every package except internal/experiments: its
# figure-grid suite takes ~3 min without the detector and over 40 min
# with it on a single-CPU machine, and its only concurrency is the
# internal/sweep worker pool, which is raced directly (here and again in
# ci's explicit pass). race-full is the opt-in everything-raced run.
race:
	$(GO) test -race -timeout 30m $$($(GO) list ./... | grep -v internal/experiments)

race-full:
	$(GO) test -race -timeout 90m ./...

# ci is the gate: clean build, vet, and the full suite under the race
# detector. ./... covers every package, including the kernel-heavy ones
# (internal/matrix, internal/qbd, internal/core) whose property tests pin
# the in-place and SSE2 kernels bitwise to their allocating counterparts,
# and internal/sweep, the concurrency-heavy subsystem. The explicit
# race-mode pass over sweep and certify re-runs the fault-injection and
# degradation paths, whose hooks and worker pool are the likeliest place
# for a data race to hide. internal/serve joins the explicit list: the
# daemon's handlers, flight group, shard pool and shutdown path are all
# concurrent by construction. The GOMAXPROCS=4 passes re-run the
# per-class parallel-solve property tests and the striped-cache stress
# with four Ps even on a 1-CPU machine, so the worker group, the
# per-class workspace arenas and the cache stripes are raced with real
# interleaving rather than cooperative single-P scheduling.
ci: build vet race
	$(GO) vet ./... && $(GO) test -race -count 1 ./internal/sweep/ ./internal/certify/ ./internal/core/ ./internal/serve/
	GOMAXPROCS=4 $(GO) test -race -count 1 ./internal/core/
	GOMAXPROCS=4 $(GO) test -race -count 1 -run 'TestCache' ./internal/sweep/
	GOMAXPROCS=4 $(GO) test -race -count 1 \
		-run 'TestBlockOp|TestAdoptOp|TestKronBlock|TestCSRBlock' ./internal/matrix/
	$(MAKE) chaos-short
	$(MAKE) xcheck-short

# chaos soaks the daemon under the seeded fault schedules (injected shard
# panics, numeric failures, solver latency, NaN-contaminated R iterates,
# and a pre-corrupted cache directory) with the race detector on, and
# fails on any broken invariant: a daemon death, a non-finite or
# uncertified 200, a breaker that never opens or never re-closes, or
# error counters that do not reconcile with what the clients observed.
# chaos-short is the same harness sized for the ci gate (<60 s); chaos is
# the long soak.
chaos:
	GANG_CHAOS_SECONDS=20 $(GO) test -race -count 1 -run TestChaosSoak -v ./internal/serve/

chaos-short:
	GANG_CHAOS_SECONDS=4 GOMAXPROCS=4 $(GO) test -race -count 1 -run TestChaosSoak ./internal/serve/

# fuzz-short is the soundness smoke: 30 seconds of random QBD generator
# blocks must never produce a certified-but-invalid R (once through the
# classical ladder, once with the Newton rung forced on — a failed
# Newton attempt must fall through to the classical rungs, never leak
# NaN), 30 seconds of random request bodies must never crash the
# daemon's decoder or produce an untyped rejection (every decode error
# must map to a 400), and 30 seconds of arbitrary cache.jsonl bytes must
# never break recovery-on-open (no panic, no open error, and the
# repaired file must reopen pristine).
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzRMatrixCertify -fuzztime 30s ./internal/certify/
	$(GO) test -run '^$$' -fuzz FuzzRMatrixNewton -fuzztime 30s ./internal/certify/
	$(GO) test -run '^$$' -fuzz FuzzDecodeSolveRequest -fuzztime 30s ./internal/serve/
	$(GO) test -run '^$$' -fuzz FuzzCacheRecovery -fuzztime 30s ./internal/sweep/
	$(GO) test -run '^$$' -fuzz FuzzScenarioCorpus -fuzztime 30s ./internal/xcheck/

# xcheck is the differential validation oracle (DESIGN.md §14): every
# corpus scenario is answered independently by the analytic fixed point
# and the discrete-event simulator, gated by tolerance-widened
# batch-means CIs plus metamorphic invariants. `make xcheck` runs the
# full 200-case corpus and regenerates the committed report
# (xcheck-report.json — byte-identical across runs given the seed, at
# any worker count); failure artifacts land under the gitignored
# xcheck-out/ with their replay command printed. xcheck-short is the ci
# tier: first a GOMAXPROCS=4 race pass over the oracle's machinery (the
# worker pool at two widths, a full end-to-end case, and the
# injected-bug detection test), then the 32-case corpus prefix — the
# literal first 32 cases of the committed corpus — without the
# detector. Racing the full slice is excluded for the same reason
# `race` skips internal/experiments: the solver-heavy corpus cases need
# upwards of 20 minutes under the detector on a 1-CPU machine.
xcheck:
	$(GO) run ./cmd/gangcheck -n 200 -out xcheck-report.json

xcheck-short:
	GOMAXPROCS=4 $(GO) test -race -count 1 \
		-run 'TestRunPoolDeterministic|TestCheckCaseAgrees|TestInjectedBugCaught' ./internal/xcheck/
	$(GO) run ./cmd/gangcheck -n 32 -workers 4 -quiet

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-sweep regenerates the committed serial-vs-parallel sweep
# throughput baseline (BENCH_sweep.json).
bench-sweep:
	$(GO) test -run '^$$' -bench 'BenchmarkSweep' -benchmem -count 1 ./internal/sweep | tee bench_sweep.out
	awk -f scripts/benchjson.awk bench_sweep.out > BENCH_sweep.json
	rm -f bench_sweep.out
	cat BENCH_sweep.json

# bench-kernel regenerates the committed matrix/QBD kernel baseline
# (BENCH_kernel.json): the live R-matrix solve at three block orders, the
# same large-order solve with the Newton cyclic-reduction rung enabled,
# the vendored pre-change kernel on the same inputs, the intervisit
# convolution, and the full Theorem 4.3 fixed point.
BENCH_KERNEL_RE = 'BenchmarkRMatrix$$|BenchmarkRMatrixNewton$$|BenchmarkRMatrixPre$$|BenchmarkConvolveAll$$|BenchmarkSolveFixedPoint$$'
bench-kernel:
	$(GO) test -run '^$$' -bench $(BENCH_KERNEL_RE) -benchmem -benchtime 1s -count 1 \
		./internal/qbd ./internal/phase ./internal/core | tee bench_kernel.out
	awk -f scripts/benchjson.awk bench_kernel.out > BENCH_kernel.json
	rm -f bench_kernel.out
	cat BENCH_kernel.json

# bench-pipeline regenerates the committed cold-vs-warm staged-pipeline
# baseline (BENCH_pipeline.json): the 64-trial analytic grid on one
# worker, solved cold and with warm-started sessions, comparing trials/s
# and mean R-matrix iterations per QBD solve. -count 3 interleaves the
# pair; benchjson.awk keeps each benchmark's best run, so a scheduler
# hiccup in one repetition cannot poison the committed ratio.
bench-pipeline:
	$(GO) test -run '^$$' -bench 'BenchmarkPipeline' -benchmem -benchtime 2s -count 3 \
		./internal/sweep | tee bench_pipeline.out
	awk -f scripts/benchjson.awk bench_pipeline.out > BENCH_pipeline.json
	rm -f bench_pipeline.out
	cat BENCH_pipeline.json

# bench-serve regenerates the committed serving-path baseline
# (BENCH_serve.json): full HTTP round trips through gangserved's engine
# on the three answer paths — cold-session solve, warm-shard solve
# (structure reuse + warm-started R), and memo cache hit (zero solver
# calls). -count 3 interleaves them; benchjson.awk keeps each
# benchmark's best run.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServeSolve' -benchmem -benchtime 1s -count 3 \
		./internal/serve | tee bench_serve.out
	awk -f scripts/benchjson.awk bench_serve.out > BENCH_serve.json
	rm -f bench_serve.out
	cat BENCH_serve.json

# bench-scale regenerates the committed multi-core scaling matrix
# (BENCH_scale.json): the parallel fixed point (per-class dispatch), the
# parallel sweep pool and the warm serve path at GOMAXPROCS 1/2/4/8,
# plus the panel-kernel A/B (fma/avx2/sse2/go). Records keep their -N
# variant, so the JSON carries per-row gomaxprocs and a scaling_vs_1cpu
# table. On a single-CPU machine the GOMAXPROCS rows are honest
# negatives (~1.0, one core cannot scale) while the kernel A/B still
# measures real SIMD gains; the note field says which machine recorded
# the file.
bench-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkSolveFixedPointParallel' -benchmem -benchtime 1s -count 1 \
		-cpu 1,2,4,8 ./internal/core | tee bench_scale.out
	$(GO) test -run '^$$' -bench 'BenchmarkSweepParallel$$' -benchmem -benchtime 1s -count 1 \
		-cpu 1,2,4,8 ./internal/sweep | tee -a bench_scale.out
	$(GO) test -run '^$$' -bench 'BenchmarkServeSolveWarm$$' -benchmem -benchtime 1s -count 1 \
		-cpu 1,2,4,8 ./internal/serve | tee -a bench_scale.out
	$(GO) test -run '^$$' -bench 'BenchmarkPanelKernel' -benchmem -benchtime 1s -count 1 \
		./internal/matrix | tee -a bench_scale.out
	awk -f scripts/benchjson.awk bench_scale.out > BENCH_scale.json
	rm -f bench_scale.out
	cat BENCH_scale.json

# bench-huge regenerates the committed production-scale tier
# (BENCH_huge.json): repeating blocks of order ~1000–2000 built as
# structured operators (Kronecker arrivals/completions over a dense
# phase-churn A1), each solved twice — classical logarithmic reduction
# vs the Newton cyclic-reduction rung. One iteration per variant: a
# single h2048 solve runs for minutes, so statistical iteration would
# turn the target into an hour-long soak for no extra signal.
# benchjson.awk derives newton_vs_logreduction per tier.
bench-huge:
	$(GO) test -run '^$$' -bench 'BenchmarkRMatrixHuge' -benchtime 1x -timeout 40m -count 1 \
		./internal/qbd | tee bench_huge.out
	awk -f scripts/benchjson.awk bench_huge.out > BENCH_huge.json
	rm -f bench_huge.out
	cat BENCH_huge.json

# bench-compare runs the kernel benchmarks fresh and diffs them against
# the committed BENCH_kernel.json so regressions stand out line by line
# (timings wobble; watch ns_per_op magnitudes and the ratio fields).
bench-compare:
	$(GO) test -run '^$$' -bench $(BENCH_KERNEL_RE) -benchmem -benchtime 1s -count 1 \
		./internal/qbd ./internal/phase ./internal/core \
		| awk -f scripts/benchjson.awk > bench_kernel_fresh.json
	-diff -u BENCH_kernel.json bench_kernel_fresh.json && echo "bench-compare: no drift"
	rm -f bench_kernel_fresh.json
